"""Writing full and pruned checkpoints.

The writer operates on the same state dicts the benchmarks produce.  A
*full* checkpoint stores every state entry verbatim.  A *pruned* checkpoint
stores, for every floating-point variable with uncritical elements, only the
critical elements (gathered by the region encoding of its criticality mask)
and records the regions in the auxiliary file; fully-critical variables and
integer variables are stored verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.criticality import VariableCriticality
from repro.core.regions import Region, encode_mask

from .auxfile import write_aux_file
from .format import CheckpointHeader, RecordSpec, write_container

__all__ = ["WrittenCheckpoint", "write_full_checkpoint",
           "write_pruned_checkpoint", "gather_regions"]


@dataclass(frozen=True)
class WrittenCheckpoint:
    """Paths and sizes of one checkpoint on disk."""

    path: Path
    mode: str
    step: int
    nbytes: int
    aux_path: Path | None = None
    aux_nbytes: int = 0

    @property
    def total_nbytes(self) -> int:
        """Checkpoint file plus auxiliary file."""
        return self.nbytes + self.aux_nbytes


def _as_array(value: Any) -> np.ndarray:
    """State entry as a contiguous numpy array (scalars become 0-d)."""
    arr = np.asarray(value)
    if arr.dtype == object:
        raise TypeError(f"cannot checkpoint object-dtype state entry "
                        f"({type(value).__name__})")
    # ascontiguousarray promotes 0-d arrays to shape (1,); keep the original
    # shape so scalar records round-trip as scalars
    return np.ascontiguousarray(arr).reshape(arr.shape)


def gather_regions(array: np.ndarray, regions: list[Region]) -> np.ndarray:
    """Concatenate the elements of the critical runs of a flattened array."""
    flat = np.ascontiguousarray(array).reshape(-1)
    if not regions:
        return flat[:0]
    return np.concatenate([flat[r.start:r.stop] for r in regions])


def _header_meta(bench, state: Mapping[str, Any], step: int | None) -> dict:
    if step is None:
        step_name = bench.step_variable() if hasattr(bench, "step_variable") \
            else None
        step = int(np.asarray(state[step_name])) if step_name else 0
    return {
        "benchmark": getattr(bench, "name", "unknown"),
        "problem_class": str(getattr(getattr(bench, "params", None),
                                     "problem_class", "?")),
        "step": int(step),
    }


def write_full_checkpoint(path: str | Path, bench, state: Mapping[str, Any],
                          step: int | None = None) -> WrittenCheckpoint:
    """Write every state entry verbatim (the conventional checkpoint)."""
    meta = _header_meta(bench, state, step)
    records = []
    payloads: dict[str, bytes] = {}
    for key, value in state.items():
        arr = _as_array(value)
        records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                  shape=tuple(arr.shape), pruned=False,
                                  offset=0, nbytes=arr.nbytes,
                                  n_stored=int(arr.size)))
        payloads[key] = arr.tobytes()
    header = CheckpointHeader(mode="full", records=records, **meta)
    nbytes = write_container(path, header, payloads)
    return WrittenCheckpoint(Path(path), "full", meta["step"], nbytes)


def write_pruned_checkpoint(path: str | Path, bench,
                            state: Mapping[str, Any],
                            criticality: Mapping[str, VariableCriticality],
                            aux_path: str | Path | None = None,
                            step: int | None = None) -> WrittenCheckpoint:
    """Write only critical elements, with the regions in the auxiliary file.

    Parameters
    ----------
    path, aux_path:
        Checkpoint and auxiliary file paths; ``aux_path`` defaults to
        ``path`` with an ``.aux`` suffix appended.
    bench, state:
        The benchmark and the state to checkpoint.
    criticality:
        Per-variable criticality (``{variable name: VariableCriticality}``),
        e.g. ``ScrutinyResult.variables`` from :func:`repro.core.scrutinize`.
    """
    path = Path(path)
    aux_path = Path(aux_path) if aux_path is not None \
        else path.with_name(path.name + ".aux")
    meta = _header_meta(bench, state, step)

    # map state keys to the mask of their variable (complex pairs share one)
    key_masks: dict[str, np.ndarray] = {}
    for crit in criticality.values():
        if crit.n_uncritical == 0:
            continue
        for key in crit.variable.state_keys():
            key_masks[key] = crit.mask

    records = []
    payloads: dict[str, bytes] = {}
    regions_by_key: dict[str, list[Region]] = {}
    for key, value in state.items():
        arr = _as_array(value)
        mask = key_masks.get(key)
        if mask is None:
            records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                      shape=tuple(arr.shape), pruned=False,
                                      offset=0, nbytes=arr.nbytes,
                                      n_stored=int(arr.size)))
            payloads[key] = arr.tobytes()
            continue
        if mask.shape != arr.shape:
            raise ValueError(
                f"criticality mask shape {mask.shape} does not match state "
                f"entry {key!r} of shape {arr.shape}")
        regions = encode_mask(mask)
        regions_by_key[key] = regions
        critical_values = gather_regions(arr, regions)
        records.append(RecordSpec(key=key, dtype=arr.dtype.str,
                                  shape=tuple(arr.shape), pruned=True,
                                  offset=0, nbytes=critical_values.nbytes,
                                  n_stored=int(critical_values.size)))
        payloads[key] = critical_values.tobytes()

    header = CheckpointHeader(mode="pruned", records=records, **meta)
    header.extra["aux_file"] = aux_path.name
    nbytes = write_container(path, header, payloads)
    aux_nbytes = write_aux_file(aux_path, regions_by_key)
    return WrittenCheckpoint(path, "pruned", meta["step"], nbytes,
                             aux_path, aux_nbytes)
