"""Reading full and pruned checkpoints back into state dicts.

Full checkpoints materialise directly.  Pruned checkpoints only contain the
critical elements, so materialising them needs a *base state* to supply
values for the uncritical slots -- any values will do for correctness (that
is the paper's claim, exercised by the failure-injection experiments), and
the natural choice on a restart is the application's freshly constructed
initial state.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.regions import Region

from .auxfile import read_aux_file
from .format import CheckpointFormatError, CheckpointHeader, read_container

__all__ = ["LoadedCheckpoint", "read_checkpoint", "scatter_regions"]


def scatter_regions(target: np.ndarray, regions: list[Region],
                    values: np.ndarray) -> np.ndarray:
    """Scatter packed critical values back into a (flattened) array copy."""
    out = np.array(target, copy=True)
    flat = out.reshape(-1)
    cursor = 0
    for region in regions:
        count = len(region)
        flat[region.start:region.stop] = values[cursor:cursor + count]
        cursor += count
    if cursor != values.size:
        raise CheckpointFormatError(
            f"pruned record holds {values.size} values but the auxiliary "
            f"regions cover {cursor} elements")
    return out


@dataclass
class LoadedCheckpoint:
    """A checkpoint read from disk, before materialisation.

    ``arrays`` holds, per state key, either the full array (unpruned
    records) or the packed critical values (pruned records, whose regions
    are in ``regions``).
    """

    header: CheckpointHeader
    arrays: dict[str, np.ndarray]
    regions: dict[str, list[Region]]
    path: Path
    aux_path: Path | None

    @property
    def mode(self) -> str:
        """"full" or "pruned"."""
        return self.header.mode

    @property
    def step(self) -> int:
        """Main-loop step the checkpoint was taken at."""
        return self.header.step

    def materialize(self, base_state: Mapping[str, Any] | None = None,
                    exact_scalars: bool = False) -> dict[str, Any]:
        """Reconstruct a state dict.

        Parameters
        ----------
        base_state:
            Required for pruned checkpoints: supplies the array shells whose
            uncritical slots keep their (irrelevant) values.  Ignored for
            full checkpoints.
        exact_scalars:
            By default 0-d non-integer records come back as
            ``numpy.float64`` (convenient, but it coerces bools and narrows
            wider floats).  ``True`` returns them as numpy scalars of their
            *declared* dtype with the exact stored bits -- what bit-fidelity
            consumers such as the AD spill schedule need.  Integer records
            come back as ``int`` either way.
        """
        state: dict[str, Any] = {}
        for rec in self.header.records:
            data = self.arrays[rec.key]
            if not rec.pruned:
                state[rec.key] = self._restore_scalar(rec, data,
                                                      exact=exact_scalars)
                continue
            if base_state is None or rec.key not in base_state:
                raise ValueError(
                    f"materialising pruned record {rec.key!r} needs a base "
                    f"state providing that key")
            base = np.asarray(base_state[rec.key], dtype=rec.numpy_dtype)
            if tuple(base.shape) != rec.shape:
                raise ValueError(
                    f"base state entry {rec.key!r} has shape {base.shape}, "
                    f"checkpoint expects {rec.shape}")
            restored = scatter_regions(base, self.regions[rec.key], data)
            state[rec.key] = restored.reshape(rec.shape)
        return state

    @staticmethod
    def _restore_scalar(rec, data: np.ndarray, exact: bool = False):
        """Unwrap 0-d records to Python scalars (loop counters etc.)."""
        if rec.shape == ():
            value = data.reshape(())[()]
            if np.issubdtype(rec.numpy_dtype, np.integer):
                return int(value)
            if exact:
                return value
            return np.float64(value)
        return data.reshape(rec.shape)


def read_checkpoint(path: str | Path,
                    aux_path: str | Path | None = None) -> LoadedCheckpoint:
    """Read a checkpoint (and, for pruned ones, its auxiliary file)."""
    path = Path(path)
    header, arrays = read_container(path)
    regions: dict[str, list[Region]] = {}
    resolved_aux: Path | None = None
    if header.mode == "pruned":
        if aux_path is None:
            aux_name = header.extra.get("aux_file")
            if aux_name is None:
                raise CheckpointFormatError(
                    f"{path} is pruned but names no auxiliary file")
            resolved_aux = path.with_name(aux_name)
        else:
            resolved_aux = Path(aux_path)
        regions = read_aux_file(resolved_aux)
        missing = [rec.key for rec in header.records
                   if rec.pruned and rec.key not in regions]
        if missing:
            raise CheckpointFormatError(
                f"auxiliary file {resolved_aux} is missing regions for "
                f"pruned records: {missing}")
    return LoadedCheckpoint(header=header, arrays=arrays, regions=regions,
                            path=path, aux_path=resolved_aux)
