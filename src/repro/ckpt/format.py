"""On-disk container format of the homemade checkpoint library.

A checkpoint file is a self-describing binary container::

    +------------------+----------------------+------------------------+
    | magic (8 bytes)  | header length (u64)  | JSON header | payloads |
    +------------------+----------------------+------------------------+

The JSON header carries the benchmark metadata (name, problem class, step,
full/pruned mode) and one :class:`RecordSpec` per state-dict entry: its key,
dtype, logical shape, whether it was pruned and where its payload bytes live
in the file.  Payloads are raw little-endian array bytes -- the full C-order
array for full records, or the concatenation of the critical runs for pruned
records (whose run boundaries live in the auxiliary file, see
:mod:`repro.ckpt.auxfile`).

The format is deliberately simple: everything needed to reason about storage
(Table III) is a byte count of this file plus the auxiliary file.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CheckpointFormatError",
    "RecordSpec",
    "CheckpointHeader",
    "write_container",
    "read_container",
    "read_header",
]


#: file magic of checkpoint containers
MAGIC = b"RPCKPT01"

#: bumped whenever the header schema changes
FORMAT_VERSION = 1

_LENGTH_STRUCT = struct.Struct("<Q")


class CheckpointFormatError(RuntimeError):
    """Raised when a checkpoint file is truncated, corrupt or mismatched."""


@dataclass(frozen=True)
class RecordSpec:
    """Description of one state-dict entry stored in a checkpoint file."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    pruned: bool
    offset: int
    nbytes: int
    n_stored: int

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "key": self.key,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "pruned": self.pruned,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "n_stored": self.n_stored,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RecordSpec":
        """Inverse of :meth:`to_json`."""
        return cls(key=str(data["key"]), dtype=str(data["dtype"]),
                   shape=tuple(int(s) for s in data["shape"]),
                   pruned=bool(data["pruned"]), offset=int(data["offset"]),
                   nbytes=int(data["nbytes"]),
                   n_stored=int(data["n_stored"]))

    @property
    def numpy_dtype(self) -> np.dtype:
        """The record's numpy dtype."""
        return np.dtype(self.dtype)

    @property
    def n_elements(self) -> int:
        """Logical element count of the full array."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1


@dataclass
class CheckpointHeader:
    """Metadata block of a checkpoint container."""

    benchmark: str
    problem_class: str
    step: int
    mode: str  # "full" or "pruned"
    records: list[RecordSpec] = field(default_factory=list)
    version: int = FORMAT_VERSION
    extra: dict[str, Any] = field(default_factory=dict)

    def record(self, key: str) -> RecordSpec:
        """Look up a record by state-dict key."""
        for rec in self.records:
            if rec.key == key:
                return rec
        raise KeyError(f"checkpoint has no record for state key {key!r}")

    @property
    def keys(self) -> list[str]:
        """State-dict keys stored in the checkpoint, in file order."""
        return [rec.key for rec in self.records]

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "version": self.version,
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "step": self.step,
            "mode": self.mode,
            "records": [rec.to_json() for rec in self.records],
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CheckpointHeader":
        """Inverse of :meth:`to_json`."""
        version = int(data.get("version", -1))
        if version != FORMAT_VERSION:
            raise CheckpointFormatError(
                f"unsupported checkpoint format version {version} "
                f"(this library writes version {FORMAT_VERSION})")
        return cls(
            benchmark=str(data["benchmark"]),
            problem_class=str(data["problem_class"]),
            step=int(data["step"]),
            mode=str(data["mode"]),
            records=[RecordSpec.from_json(r) for r in data["records"]],
            version=version,
            extra=dict(data.get("extra", {})),
        )


def write_container(path: str | Path, header: CheckpointHeader,
                    payloads: Mapping[str, bytes]) -> int:
    """Write a checkpoint container and return its total byte size.

    ``payloads`` maps state keys to raw bytes; record offsets in ``header``
    are (re)computed here so callers only need to fill in sizes-agnostic
    metadata.
    """
    path = Path(path)
    ordered = list(header.records)
    missing = [rec.key for rec in ordered if rec.key not in payloads]
    if missing:
        raise ValueError(f"payloads missing for records: {missing}")

    # recompute offsets relative to the start of the payload section
    cursor = 0
    fixed_records: list[RecordSpec] = []
    for rec in ordered:
        blob = payloads[rec.key]
        fixed_records.append(RecordSpec(rec.key, rec.dtype, rec.shape,
                                        rec.pruned, cursor, len(blob),
                                        rec.n_stored))
        cursor += len(blob)
    header.records = fixed_records

    header_bytes = json.dumps(header.to_json(), sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_LENGTH_STRUCT.pack(len(header_bytes)))
        fh.write(header_bytes)
        for rec in fixed_records:
            fh.write(payloads[rec.key])
    return path.stat().st_size


def read_header(path: str | Path) -> tuple[CheckpointHeader, int]:
    """Read only the header; returns ``(header, payload_start_offset)``."""
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointFormatError(
                f"{path} is not a checkpoint file (bad magic {magic!r})")
        (header_len,) = _LENGTH_STRUCT.unpack(fh.read(_LENGTH_STRUCT.size))
        header_bytes = fh.read(header_len)
        if len(header_bytes) != header_len:
            raise CheckpointFormatError(f"{path} is truncated in the header")
        header = CheckpointHeader.from_json(json.loads(header_bytes))
        payload_start = len(MAGIC) + _LENGTH_STRUCT.size + header_len
    return header, payload_start


def read_container(path: str | Path
                   ) -> tuple[CheckpointHeader, dict[str, np.ndarray]]:
    """Read a checkpoint container into flat per-key arrays.

    Full records come back with their logical shape; pruned records come
    back as the flat array of stored (critical) values -- reassembly into
    the full array is the reader's job (:mod:`repro.ckpt.reader`), because
    it needs the auxiliary region file.
    """
    header, payload_start = read_header(path)
    arrays: dict[str, np.ndarray] = {}
    with open(path, "rb") as fh:
        for rec in header.records:
            fh.seek(payload_start + rec.offset)
            blob = fh.read(rec.nbytes)
            if len(blob) != rec.nbytes:
                raise CheckpointFormatError(
                    f"{path} is truncated in record {rec.key!r}")
            flat = np.frombuffer(blob, dtype=rec.numpy_dtype).copy()
            if rec.pruned:
                arrays[rec.key] = flat
            else:
                arrays[rec.key] = flat.reshape(rec.shape)
    return header, arrays
