"""Restarting benchmarks from checkpoints.

This is the consumer side of the paper's Section III-B / IV-C: load the
latest checkpoint (full or pruned), rebuild the application state (for
pruned checkpoints the uncritical slots are filled from a freshly
constructed initial state -- their values are irrelevant by construction),
run the remaining main-loop iterations and hand the final state to the
benchmark's own verification phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.npb.common import VerificationResult

from .reader import LoadedCheckpoint, read_checkpoint

__all__ = ["RestartOutcome", "restore_state", "restart_benchmark"]


@dataclass
class RestartOutcome:
    """Result of restarting a benchmark from a checkpoint."""

    benchmark: str
    mode: str
    restart_step: int
    steps_replayed: int
    verification: VerificationResult
    final_state: dict[str, Any]

    @property
    def passed(self) -> bool:
        """Did the benchmark's own verification phase succeed?"""
        return bool(self.verification)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "PASSED" if self.passed else "FAILED"
        return (f"{self.benchmark}: restart from {self.mode} checkpoint at "
                f"step {self.restart_step}, replayed {self.steps_replayed} "
                f"iterations, verification {status}")


def restore_state(checkpoint: LoadedCheckpoint | str | Path, bench,
                  base_state: Mapping[str, Any] | None = None
                  ) -> dict[str, Any]:
    """Rebuild an application state dict from a checkpoint.

    For pruned checkpoints the ``base_state`` defaults to
    ``bench.initial_state()``; only its uncritical slots survive into the
    restored state, so any garbage there must not change the outcome (the
    property the verification experiments check).
    """
    if not isinstance(checkpoint, LoadedCheckpoint):
        checkpoint = read_checkpoint(checkpoint)
    if checkpoint.mode == "pruned" and base_state is None:
        base_state = bench.initial_state()
    return checkpoint.materialize(base_state)


def restart_benchmark(bench, checkpoint: LoadedCheckpoint | str | Path,
                      base_state: Mapping[str, Any] | None = None,
                      steps: int | None = None) -> RestartOutcome:
    """Restore, run the remaining iterations and verify.

    Parameters
    ----------
    bench:
        The benchmark instance to restart (must match the checkpoint's
        benchmark name).
    checkpoint:
        A loaded checkpoint or a path to one.
    base_state:
        Optional explicit base state for pruned checkpoints (e.g. a
        deliberately corrupted one from the failure-injection harness).
    steps:
        Number of iterations to replay; defaults to every remaining
        iteration implied by the checkpoint's step.
    """
    if not isinstance(checkpoint, LoadedCheckpoint):
        checkpoint = read_checkpoint(checkpoint)
    if checkpoint.header.benchmark != bench.name:
        raise ValueError(
            f"checkpoint was written by {checkpoint.header.benchmark!r}, "
            f"cannot restart {bench.name!r} from it")
    state = restore_state(checkpoint, bench, base_state)
    remaining = steps if steps is not None \
        else max(bench.total_steps - checkpoint.step, 0)
    final_state = bench.run(state, remaining)
    verification = bench.verify(final_state)
    return RestartOutcome(
        benchmark=bench.name,
        mode=checkpoint.mode,
        restart_step=int(checkpoint.step),
        steps_replayed=int(remaining),
        verification=verification,
        final_state={k: (np.array(v, copy=True)
                         if isinstance(v, np.ndarray) else v)
                     for k, v in final_state.items()},
    )
