"""Command-line interface: ``repro-scrutinize``.

Sub-commands map one-to-one onto the experiment drivers plus a per-benchmark
``analyze`` command::

    repro-scrutinize analyze BT --step 30
    repro-scrutinize table1
    repro-scrutinize table2
    repro-scrutinize table3
    repro-scrutinize figures --export-dir out/figures
    repro-scrutinize verify --class T
    repro-scrutinize ablation methods
    repro-scrutinize precision --benchmarks MG LU
    repro-scrutinize incremental
    repro-scrutinize all

Every command prints the same text the experiment report carries and exits
non-zero when the result deviates from the paper (useful in CI).

Global ``--workers N`` fans the per-benchmark AD analyses out across worker
processes and ``--cache-dir DIR`` persists results on disk, so e.g.::

    repro-scrutinize --workers 4 --cache-dir out/cache all   # cold: parallel
    repro-scrutinize --cache-dir out/cache all               # warm: instant

Global ``--sweep segmented`` bounds the AD tape memory to one main-loop
iteration (bitwise-identical masks), which is what makes the enlarged
problem class A analysable::

    repro-scrutinize --class A --sweep segmented analyze FT

``--snapshot-schedule`` additionally caps the segmented sweep's boundary-
snapshot memory: ``binomial`` keeps ~log2(steps) snapshots and recomputes
the rest, ``spill`` pushes the boundaries to disk through the checkpoint
library (O(1) resident snapshot)::

    repro-scrutinize --sweep segmented --snapshot-schedule binomial analyze CG
    repro-scrutinize --sweep segmented --snapshot-schedule spill \
        --spill-dir /tmp/scratch analyze CG
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.criticality import DEFAULT_PROBE_SCALE
from repro.experiments import (ExperimentRunner, ablation, figures,
                               incremental, precision, table1, table2,
                               table3, verify)
from repro.experiments.faults import FaultPolicy, parse_chaos
from repro.npb import registry
from repro.viz import describe_mask, legend, render_mask_1d

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-scrutinize",
        description="Scrutinize checkpoint variables with automatic "
                    "differentiation (SC 2024 reproduction)")
    parser.add_argument("--class", dest="problem_class", default="S",
                        choices=("S", "T", "A"),
                        help="problem class (S reproduces the paper, "
                             "T is a reduced size for quick runs, A is the "
                             "enlarged class unlocked by --sweep segmented; "
                             "class A is registered for CG and FT -- larger "
                             "arrays -- and EP and IS -- longer main loops)")
    parser.add_argument("--method", default="ad",
                        choices=("ad", "tangent", "activity", "rule"),
                        help="criticality analysis method: 'ad' is the "
                             "paper's reverse-mode sweep, 'tangent' computes "
                             "the same derivative criterion with the "
                             "tape-free forward-mode (JVP) sweep -- "
                             "bitwise-identical masks, memory independent "
                             "of the loop length, cost scaling with the "
                             "number of watched elements instead; "
                             "'activity' is the derivative-free read-set "
                             "baseline (honours --sweep, the snapshot "
                             "schedules and --trace-cache like 'ad')")
    parser.add_argument("--probes", type=int, default=1,
                        help="number of AD probes per variable")
    parser.add_argument("--probe-batching", default="batched",
                        choices=("batched", "per-probe"),
                        help="how multi-probe AD runs execute: 'batched' "
                             "stacks all probe states along a leading probe "
                             "axis and runs one trace plus one sweep "
                             "(identical masks, automatic per-probe "
                             "fallback for kernels that cannot broadcast); "
                             "'per-probe' forces one trace per probe")
    parser.add_argument("--probe-scale", type=float,
                        default=DEFAULT_PROBE_SCALE,
                        help="relative magnitude of the probe "
                             "perturbations; part of the result-cache key, "
                             "so different magnitudes never alias")
    parser.add_argument("--sweep", default="monolithic",
                        choices=("monolithic", "segmented"),
                        help="sweep strategy of the 'ad' and 'activity' "
                             "analyses: 'monolithic' records every "
                             "remaining iteration on one tape, 'segmented' "
                             "chains per-iteration tapes so peak memory is "
                             "bounded by a single iteration (identical "
                             "masks)")
    parser.add_argument("--snapshot-schedule", default="all",
                        choices=("all", "binomial", "spill"),
                        help="boundary-snapshot policy of the segmented "
                             "sweep: 'all' keeps every iteration boundary "
                             "in memory, 'binomial' keeps ~log2(steps) and "
                             "recomputes the rest (revolve-style), 'spill' "
                             "writes boundaries through the checkpoint "
                             "library to a scratch directory; masks are "
                             "identical for all three (part of the "
                             "result-cache key)")
    parser.add_argument("--snapshot-budget", type=int, default=None,
                        help="in-memory snapshot budget of the binomial "
                             "schedule (>= 2; default ~log2(steps))")
    parser.add_argument("--spill-dir", default=None,
                        help="parent directory for the spill schedule's "
                             "scratch files (default: system temp dir); "
                             "always cleaned up afterwards")
    parser.add_argument("--trace-cache", default="plan",
                        choices=("plan", "off"),
                        help="trace-specialisation of the segmented sweep: "
                             "'plan' (default) records each step structure "
                             "once, compiles it to a replay plan and "
                             "replays it for further segments/probes "
                             "(bitwise-identical masks); 'off' re-traces "
                             "every segment -- the escape hatch for custom "
                             "kernels whose traced structure depends on "
                             "state values")
    parser.add_argument("--plan-optimize", default="fuse",
                        choices=("fuse", "off"),
                        help="optimisation level of the compiled replay "
                             "plans: 'fuse' (default) fuses elementwise/"
                             "unary chains, eliminates dead slots and "
                             "packs the value arena by liveness; 'off' "
                             "replays the raw instruction list one op at "
                             "a time (bitwise-identical masks either way; "
                             "requires --sweep segmented with "
                             "--trace-cache plan)")
    parser.add_argument("--executor", default="interp",
                        choices=("interp", "numba"),
                        help="backend that runs the lowered plans: "
                             "'interp' (default) interprets the "
                             "instruction stream with preallocated "
                             "buffers; 'numba' JIT-compiles eligible "
                             "fused chains when numba is importable and "
                             "silently falls back to the interpreter "
                             "otherwise (requires --sweep segmented with "
                             "--trace-cache plan)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the per-benchmark "
                             "analyses (1 = in-process, the default)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist scrutiny results in this directory "
                             "so repeated runs skip the AD sweeps; also "
                             "holds the batch journal that makes "
                             "interrupted runs resumable")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute everything")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="failed attempts a job may accumulate before "
                             "it is quarantined as poisoned (default 2)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="wall-clock seconds one job attempt may run "
                             "before the engine recycles the worker pool "
                             "and requeues it (default: no timeout; "
                             "requires --workers > 1 -- an in-process job "
                             "cannot be preempted)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        help="base of the exponential backoff between "
                             "retry attempts, in seconds (deterministic "
                             "jitter is added on top; default 0.05)")
    parser.add_argument("--on-failure", default="raise",
                        choices=("raise", "record"),
                        help="what a poisoned job (retries exhausted) does "
                             "to the batch: 'raise' (default) re-raises "
                             "its exception; 'record' completes the batch "
                             "and reports the structured failure in the "
                             "fault summary")
    parser.add_argument("--no-journal", action="store_true",
                        help="do not record per-job completion in the "
                             "cache directory's journal.jsonl (journalled "
                             "runs resume after a kill without re-running "
                             "finished jobs)")
    parser.add_argument("--chaos", default=None, metavar="MODES",
                        help="deterministic fault injection for CI "
                             "smokes: comma-separated subset of "
                             "worker-kill, hang, transient, corrupt-cache "
                             "(each injected fault strikes a job's first "
                             "attempt only, so retries recover and the "
                             "results stay bitwise identical to a "
                             "fault-free run)")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="seed decorrelating --chaos targeting "
                             "across runs (default 0)")

    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze",
                             help="scrutinize one benchmark's variables")
    analyze.add_argument("benchmark",
                         choices=list(registry.available_benchmarks()))
    analyze.add_argument("--step", type=int, default=None,
                         help="checkpoint step (default: mid-run)")
    analyze.add_argument("--show-masks", action="store_true",
                         help="also print a 1-D rendering of every mask")

    sub.add_parser("table1", help="Table I: checkpoint-variable inventory")
    sub.add_parser("table2", help="Table II: uncritical element counts")
    table3_parser = sub.add_parser(
        "table3", help="Table III: checkpoint storage comparison")
    table3_parser.add_argument("--no-disk", action="store_true",
                               help="skip writing measurement checkpoints")

    figures_parser = sub.add_parser("figures",
                                    help="Figures 3-8: distributions")
    figures_parser.add_argument("--figure", default=None,
                                choices=sorted(figures.FIGURES),
                                help="regenerate a single figure")
    figures_parser.add_argument("--export-dir", default=None,
                                help="write CSV/JSON/PGM artefacts here")

    verify_parser = sub.add_parser(
        "verify", help="Section IV-C: restart verification")
    verify_parser.add_argument("--benchmarks", nargs="+", default=None,
                               help="subset of benchmarks to verify")

    ablation_parser = sub.add_parser("ablation", help="design ablations")
    ablation_parser.add_argument("which",
                                 choices=("methods", "probes", "encoding"))

    precision_parser = sub.add_parser(
        "precision", help="impact-aware mixed-precision checkpoints "
                          "(future-work extension)")
    precision_parser.add_argument("--benchmarks", nargs="+", default=None,
                                  help="subset of benchmarks to study")
    precision_parser.add_argument("--no-aggressive", action="store_true",
                                  help="skip the aggressive quantile plan")

    incremental_parser = sub.add_parser(
        "incremental", help="criticality pruning vs. incremental deltas "
                            "(extension)")
    incremental_parser.add_argument("--benchmarks", nargs="+", default=None,
                                    help="subset of benchmarks to study")

    sub.add_parser("all", help="run every table and figure experiment")
    return parser


def _make_runner(args: argparse.Namespace,
                 step: int | None = None) -> ExperimentRunner:
    policy = FaultPolicy(max_retries=args.max_retries,
                         timeout=args.job_timeout,
                         backoff=args.retry_backoff)
    chaos = None
    if args.chaos is not None:
        chaos = parse_chaos(args.chaos, seed=args.chaos_seed)
    return ExperimentRunner(problem_class=args.problem_class,
                            method=args.method, n_probes=args.probes,
                            step=step, workers=args.workers,
                            cache_dir=args.cache_dir,
                            use_cache=not args.no_cache,
                            sweep=args.sweep,
                            probe_scale=args.probe_scale,
                            probe_batching=args.probe_batching,
                            snapshot_schedule=args.snapshot_schedule,
                            snapshot_budget=args.snapshot_budget,
                            spill_dir=args.spill_dir,
                            trace_cache=args.trace_cache,
                            plan_optimize=args.plan_optimize,
                            executor=args.executor,
                            fault_policy=policy,
                            on_failure=args.on_failure,
                            journal=not args.no_journal,
                            chaos=chaos)


def _print_fault_summary(runner: ExperimentRunner) -> None:
    """Surface failure/retry/quarantine telemetry after a command."""
    stats = runner.fault_stats
    if stats.eventful():
        print()
        print(stats.summary())


def _run_analyze(args: argparse.Namespace) -> int:
    runner = _make_runner(args, step=args.step)
    result = runner.result(args.benchmark)
    print(result.describe())
    if args.show_masks and result.ok:
        print()
        print(legend())
        for name, crit in result.variables.items():
            print(f"\n{crit.variable}:")
            print(render_mask_1d(crit.mask))
            print(describe_mask(crit.mask))
    _print_fault_summary(runner)
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # the snapshot schedule only exists under the segmented sweep, the
    # budget only under the binomial schedule and the spill dir only under
    # the spill schedule; accepting an inapplicable flag silently would do
    # nothing while still forking the result-cache key
    if args.sweep != "segmented" and (args.snapshot_schedule != "all"
                                      or args.snapshot_budget is not None
                                      or args.spill_dir is not None):
        parser.error("--snapshot-schedule/--snapshot-budget/--spill-dir "
                     "require --sweep segmented")
    if args.snapshot_budget is not None \
            and args.snapshot_schedule != "binomial":
        parser.error("--snapshot-budget requires "
                     "--snapshot-schedule binomial")
    if args.snapshot_budget is not None and args.snapshot_budget < 2:
        parser.error("--snapshot-budget must be at least 2")
    if args.spill_dir is not None and args.snapshot_schedule != "spill":
        parser.error("--spill-dir requires --snapshot-schedule spill")
    if args.trace_cache != "plan" and args.sweep != "segmented":
        parser.error("--trace-cache off only affects --sweep segmented")
    if args.plan_optimize != "fuse" and (args.sweep != "segmented"
                                         or args.trace_cache != "plan"):
        parser.error("--plan-optimize off requires --sweep segmented "
                     "with --trace-cache plan")
    if args.executor != "interp" and (args.sweep != "segmented"
                                      or args.trace_cache != "plan"):
        parser.error("--executor numba requires --sweep segmented "
                     "with --trace-cache plan")
    if args.method == "activity" and args.probes != 1:
        parser.error("--method activity is value-independent; "
                     "--probes must be 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be non-negative")
    if args.retry_backoff < 0:
        parser.error("--retry-backoff must be non-negative")
    if args.job_timeout is not None and args.job_timeout <= 0:
        parser.error("--job-timeout must be positive")
    if args.job_timeout is not None and args.workers <= 1:
        parser.error("--job-timeout requires --workers > 1 (an in-process "
                     "job cannot be preempted)")
    if args.chaos is None and args.chaos_seed != 0:
        parser.error("--chaos-seed requires --chaos")
    if args.chaos is not None:
        try:
            parse_chaos(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            parser.error(str(exc))
    if args.no_journal and args.cache_dir is None:
        parser.error("--no-journal only applies with --cache-dir (the "
                     "journal lives next to the result store)")

    if args.command == "analyze":
        return _run_analyze(args)

    runner = _make_runner(args)
    reports = []
    if args.command == "table1":
        reports.append(table1.run(runner))
    elif args.command == "table2":
        reports.append(table2.run(runner))
    elif args.command == "table3":
        reports.append(table3.run(runner,
                                  measure_on_disk=not args.no_disk))
    elif args.command == "figures":
        if args.figure:
            reports.append(figures.run(args.figure, runner,
                                       export_dir=args.export_dir))
        else:
            reports.append(figures.run_all(runner,
                                           export_dir=args.export_dir))
    elif args.command == "verify":
        benchmarks = tuple(b.upper() for b in args.benchmarks) \
            if args.benchmarks else verify.VERIFY_BENCHMARKS
        reports.append(verify.run(runner, benchmarks=benchmarks))
    elif args.command == "ablation":
        if args.which == "methods":
            reports.append(ablation.run_methods(
                problem_class=args.problem_class))
        elif args.which == "probes":
            reports.append(ablation.run_probes(
                problem_class=args.problem_class))
        else:
            reports.append(ablation.run_encoding(
                problem_class=args.problem_class))
    elif args.command == "precision":
        benchmarks = tuple(b.upper() for b in args.benchmarks) \
            if args.benchmarks else precision.DEFAULT_BENCHMARKS
        reports.append(precision.run(
            runner, benchmarks=benchmarks,
            include_aggressive=not args.no_aggressive))
    elif args.command == "incremental":
        benchmarks = tuple(b.upper() for b in args.benchmarks) \
            if args.benchmarks else incremental.DEFAULT_BENCHMARKS
        reports.append(incremental.run(runner, benchmarks=benchmarks))
    elif args.command == "all":
        runner.prefetch(registry.available_benchmarks())
        reports.append(table1.run(runner))
        reports.append(table2.run(runner))
        reports.append(table3.run(runner))
        reports.append(figures.run_all(runner))
        reports.append(verify.run(runner))

    for report in reports:
        print(report.text)
        print()
    _print_fault_summary(runner)
    ok = all(r.matches_paper for r in reports) \
        and runner.fault_stats.quarantined == 0
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
