"""MG -- MultiGrid (V-cycle Poisson solver) port.

Checkpoint variables (paper Table I, class S)::

    double u[46480]
    double r[46480]
    int    it

The original NPB MG stores the whole multigrid hierarchy of the solution
``u`` and the residual ``r`` in flat arrays addressed through per-level
offset tables; class S declares 46480 slots.  The paper's findings this port
reproduces (Table II, Figures 4 and 5):

* ``u``: 7176 of 46480 elements uncritical.  Only the finest level -- a
  34x34x34 block of 39304 elements at offset 0 -- is ever *read* between a
  restart point and the verification output; the coarser-level blocks and
  the allocation tail are (re)written by the V-cycle before any read, so
  their checkpointed values cannot influence the output (Figure 4: one
  critical prefix followed by one uncritical tail).
* ``r``: 10543 of 46480 elements uncritical.  The first consumer of the
  checkpointed residual is the restriction sweep at the top of the V-cycle,
  which (like the original ``rprj3`` loop bounds) only reads indices
  ``0 .. 32`` of each dimension of the finest 34x34x34 block -- a 33x33x33
  sub-block of 35937 elements.  In the flat layout this produces the
  repetitive critical/uncritical stripe pattern of Figure 5 (33 critical, 1
  uncritical, repeating, with whole uncritical planes every 34 stripes),
  and leaves the coarser levels and the tail uncritical exactly as for
  ``u``.

Per-iteration structure mirroring the original ``mg3P`` + ``resid`` loop:

1. restrict the current (checkpointed, on the first restart iteration)
   residual down the level hierarchy, *writing* every coarser-level block of
   ``r``;
2. smooth a correction on every coarser level, *writing* the coarser-level
   blocks of ``u``;
3. prolongate the corrections back to the finest grid and update the finest
   block of ``u``;
4. recompute the finest-level residual ``r = v - A u`` with the 27-point
   operator, overwriting the full finest block of ``r``.

The right-hand side ``v`` is a deterministic function of the problem
parameters (the original regenerates it with ``zran3`` from a fixed seed),
so it is not a checkpoint variable.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import VerificationResult

__all__ = ["MG"]


#: value stored in never-written slots of the flat arrays at initialisation
_FILL = 0.0


def _stencil_weights() -> np.ndarray:
    """Weights of the 27-point discrete Laplacian used by the port.

    The original MG ``resid`` operator couples the centre point to all 26
    neighbours with one weight per neighbour class (centre, face, edge,
    corner).  Any strictly-nonzero weight per class reproduces the access
    pattern; the values below give a diagonally dominant operator so the
    V-cycle iteration stays bounded.
    """
    w = np.empty((3, 3, 3), dtype=np.float64)
    for dk in range(3):
        for dj in range(3):
            for di in range(3):
                dist = abs(dk - 1) + abs(dj - 1) + abs(di - 1)
                w[dk, dj, di] = {0: -3.0, 1: 0.25, 2: 0.125, 3: 0.0625}[dist]
    return w


class MG(NPBBenchmark):
    """MultiGrid V-cycle solver surrogate (see module docstring)."""

    name = "MG"
    #: verification tolerance (NPB uses 1e-8 for MG's residual norm check)
    epsilon = 1.0e-8
    #: weight of the prolongated coarse corrections (negative because the
    #: 27-point operator has a negative diagonal, like a Jacobi step)
    correction_weight = -0.05
    #: weight of the fine-grid smoothing step (damped Jacobi, 1/diag < 0)
    smoothing_weight = -0.3

    def __init__(self, params=None, problem_class: str = "S") -> None:
        from .params import params_for

        super().__init__(params or params_for("MG", problem_class))
        p = self.params
        sizes = p.level_sizes()
        self._fine = sizes[0]
        self._coarse_sizes = sizes[1:]
        self._offsets = p.level_offsets()
        self._weights = _stencil_weights()
        self._v = self._right_hand_side()
        self._restriction = [self._transfer_matrix(self._fine - 1, n)
                             for n in self._coarse_sizes]
        self._prolongation = [self._transfer_matrix(n, self._fine)
                              for n in self._coarse_sizes]
        self._reference: dict[str, float] | None = None

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        nr = self.params.nr
        return (
            CheckpointVariable("u", (nr,), VariableKind.FLOAT,
                               description="solution of the 3-D discrete "
                                           "Poisson equation (flat "
                                           "multigrid hierarchy)"),
            CheckpointVariable("r", (nr,), VariableKind.FLOAT,
                               description="residual of the equation (flat "
                                           "multigrid hierarchy)"),
            CheckpointVariable("it", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="main-loop (V-cycle) index"),
        )

    # ------------------------------------------------------------------
    # constant data
    # ------------------------------------------------------------------
    def _right_hand_side(self) -> np.ndarray:
        """Deterministic +/-1 charge distribution standing in for ``zran3``.

        The original places +1 / -1 charges at the extrema of a fixed random
        field; the locations are reproducible from the seed, so ``v`` is a
        constant of the problem, not a checkpoint variable.  We place an
        equal number of positive and negative unit charges at pseudo-random
        interior positions drawn from a fixed-seed generator, plus a smooth
        low-amplitude background that breaks any accidental symmetry (so no
        finite difference of the solution is coincidentally zero).
        """
        n = self._fine
        rng = np.random.default_rng(20240314)
        v = np.zeros((n, n, n), dtype=np.float64)
        n_charges = 10
        interior = rng.choice((n - 2) ** 3, size=2 * n_charges, replace=False)
        for rank, flat in enumerate(interior):
            k, rem = divmod(int(flat), (n - 2) ** 2)
            j, i = divmod(rem, n - 2)
            v[k + 1, j + 1, i + 1] = 1.0 if rank < n_charges else -1.0
        axis = np.linspace(0.0, 1.0, n)
        background = (1.0e-3 * np.sin(2.3 * axis[:, None, None] + 0.1)
                      * np.cos(1.7 * axis[None, :, None] + 0.2)
                      * np.sin(1.1 * axis[None, None, :] + 0.3))
        return v + background

    def _transfer_matrix(self, n_from: int, n_to: int) -> np.ndarray:
        """Dense inter-grid transfer operator along one axis.

        Rows are normalised tent (hat) weights centred on the target points,
        widened so every source point receives a strictly positive weight --
        the property that guarantees every restricted element influences the
        coarse correction (and hence the output), mirroring how the original
        full-weighting stencils touch every fine point.
        """
        src = np.linspace(0.0, 1.0, n_from)
        dst = np.linspace(0.0, 1.0, n_to)
        width = max(1.0 / max(n_to - 1, 1), 1.0 / max(n_from - 1, 1))
        weights = np.maximum(1.0 - np.abs(dst[:, None] - src[None, :]) / width,
                             0.0) + 1.0e-3
        return weights / weights.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        nr = self.params.nr
        n = self._fine
        u_flat = np.full(nr, _FILL, dtype=np.float64)
        r_flat = np.full(nr, _FILL, dtype=np.float64)
        # initial guess: zero solution, so the initial residual equals v
        u0 = np.zeros((n, n, n), dtype=np.float64)
        r0 = self._v - self._apply_operator(u0)
        u_flat[: n ** 3] = u0.reshape(-1)
        r_flat[: n ** 3] = np.asarray(r0).reshape(-1)
        return {"u": u_flat, "r": r_flat, "it": 0}

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _apply_operator(self, u3: Any) -> Any:
        """27-point operator ``A u`` on the interior, zero on the boundary.

        Evaluating the stencil at every interior point reads all ``n**3``
        elements of ``u3`` (the corner elements are reached through the
        diagonal couplings), which is what makes the whole finest block of
        ``u`` critical.
        """
        n = self._fine
        total = None
        for dk in range(3):
            for dj in range(3):
                for di in range(3):
                    w = self._weights[dk, dj, di]
                    term = w * u3[dk:n - 2 + dk, dj:n - 2 + dj, di:n - 2 + di]
                    total = term if total is None else total + term
        out = ops.index_update(
            np.zeros((n, n, n), dtype=np.float64),
            (slice(1, n - 1), slice(1, n - 1), slice(1, n - 1)), total)
        return out

    def _axis_map(self, matrix: np.ndarray, field: Any) -> Any:
        """Apply ``matrix`` along every axis of a cubic 3-D field."""
        out = field
        for axis in range(3):
            moved = ops.moveaxis(out, axis, 0)
            n_in = matrix.shape[1]
            # logical_shape strips the probe axis of a batched sweep, so the
            # reshape targets below stay in logical coordinates
            rest_shape = tuple(ops.logical_shape(moved)[1:])
            rest = int(np.prod(rest_shape))
            flat = ops.reshape(moved, (n_in, rest))
            mixed = ops.matmul(matrix, flat)
            new_shape = (matrix.shape[0],) + rest_shape
            out = ops.moveaxis(ops.reshape(mixed, new_shape), 0, axis)
        return out

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        n = self._fine
        nr = self.params.nr
        u_flat, r_flat = state["u"], state["r"]

        u_fine = ops.reshape(u_flat[0: n ** 3], (n, n, n))
        # 1. restriction: rprj3-style loop bounds read only indices 0..n-2 of
        #    each dimension of the finest residual block (Figure 5).
        r_fine = ops.reshape(r_flat[0: n ** 3], (n, n, n))
        work = r_fine[0: n - 1, 0: n - 1, 0: n - 1]

        new_u = ops.copy(u_flat) if isinstance(u_flat, np.ndarray) else u_flat
        new_r = ops.copy(r_flat) if isinstance(r_flat, np.ndarray) else r_flat

        correction = None
        for level, n_c in enumerate(self._coarse_sizes):
            coarse = self._axis_map(self._restriction[level], work)
            offset = self._offsets[level + 1]
            # write the restricted residual into the coarser-level block
            new_r = ops.index_update(new_r,
                                     slice(offset, offset + n_c ** 3),
                                     ops.ravel(coarse))
            # smooth a correction on this level (damped-Jacobi single sweep;
            # the weight carries the 1/diag sign of the operator)
            smooth = self.correction_weight * coarse
            new_u = ops.index_update(new_u,
                                     slice(offset, offset + n_c ** 3),
                                     ops.ravel(smooth))
            # prolongate back to the finest grid and accumulate
            prolonged = self._axis_map(self._prolongation[level], smooth)
            correction = prolonged if correction is None \
                else correction + prolonged

        # 3. fine-grid update: prolongated corrections + one smoothing step
        residual_now = self._v - self._apply_operator(u_fine)
        u_new_fine = (u_fine + correction
                      + self.smoothing_weight * residual_now)

        # 4. recompute the finest residual from the updated solution,
        #    overwriting the whole finest block of r
        r_new_fine = self._v - self._apply_operator(u_new_fine)

        new_u = ops.index_update(new_u, slice(0, n ** 3),
                                 ops.ravel(u_new_fine))
        new_r = ops.index_update(new_r, slice(0, n ** 3),
                                 ops.ravel(r_new_fine))
        # the allocation tail beyond the level layout is never touched
        del nr
        return {"u": new_u, "r": new_r, "it": int(state["it"]) + 1}

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _residual_norm(self, u_flat: Any):
        """L2 norm of ``v - A u`` over the finest grid (the MG verification
        value ``rnm2``)."""
        n = self._fine
        u_fine = ops.reshape(u_flat[0: n ** 3], (n, n, n))
        resid = self._v - self._apply_operator(u_fine)
        return ops.sqrt(ops.sum(ops.square(resid)) / float(n ** 3))

    def _solution_norm(self, u_flat: Any):
        """Weighted solution norm; reads every element of the finest block."""
        n = self._fine
        u_fine = ops.reshape(u_flat[0: n ** 3], (n, n, n))
        axis = np.linspace(0.5, 1.5, n)
        weights = (axis[:, None, None] * axis[None, :, None]
                   * axis[None, None, :])
        return ops.sum(ops.square(u_fine) * weights) / float(n ** 3)

    def output(self, state: Mapping[str, Any]):
        u_flat = state["u"]
        return self._residual_norm(u_flat) + 0.01 * self._solution_norm(u_flat)

    def _reference_values(self) -> dict[str, float]:
        if self._reference is None:
            final = concrete_state(self.run(self.initial_state(),
                                            self.total_steps))
            self._reference = {
                "rnm2": float(ops.to_numpy(self._residual_norm(final["u"]))),
                "unorm": float(ops.to_numpy(self._solution_norm(final["u"]))),
            }
        return self._reference

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        reference = self._reference_values()
        final = concrete_state(state)
        got = {
            "rnm2": float(ops.to_numpy(self._residual_norm(final["u"]))),
            "unorm": float(ops.to_numpy(self._solution_norm(final["u"]))),
        }
        details: dict[str, float] = {}
        passed = True
        for key, ref in reference.items():
            denom = abs(ref) if ref != 0.0 else 1.0
            rel = abs(got[key] - ref) / denom
            details[key] = float(rel)
            if not np.isfinite(rel) or rel > self.epsilon:
                passed = False
        return VerificationResult(self.name, passed, self.epsilon, details)
