"""IS -- Integer Sort (bucket sort) benchmark port.

Checkpoint variables (paper Table I, class S)::

    int passed_verification
    int iteration
    int key_array[65536]
    int bucket_ptrs[512]

IS ranks an array of small integer keys with a bucketised counting sort.
Every main-loop iteration perturbs two keys (a function of the iteration
number, as in the original), recomputes the bucket decomposition and the key
ranks, spot-checks a handful of (key, rank) pairs and increments
``passed_verification`` when the spot checks succeed.

All four checkpoint variables are integer data: loop counters, keys and
bucket offsets.  Reverse-mode AD does not apply to integers, so -- exactly
as the paper does -- they are classified critical *by rule*
(``critical_by_rule=True``): ``key_array`` and ``bucket_ptrs`` "store the
indexes for other arrays which makes them critical for checkpointing".
IS therefore contributes no rows to Table II/III, but it participates in the
Table I inventory and the Section IV-C restart-verification experiment.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import VerificationResult

__all__ = ["IS"]


class IS(NPBBenchmark):
    """Integer Sort benchmark surrogate (see module docstring)."""

    name = "IS"
    #: integer benchmark: verification is exact, no numerical tolerance
    epsilon = 0.0
    #: number of (key, rank) pairs spot-checked per iteration
    test_array_size = 5

    def __init__(self, params=None, problem_class: str = "S") -> None:
        from .params import params_for

        super().__init__(params or params_for("IS", problem_class))
        p = self.params
        self._shift = max(int(np.log2(p.max_key / p.num_buckets)), 0)
        self._initial_keys = self._make_keys()
        self._test_indices = self._make_test_indices()

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        p = self.params
        return (
            CheckpointVariable("passed_verification", (),
                               VariableKind.INTEGER, dtype=np.int64,
                               critical_by_rule=True,
                               description="partial-verification counter"),
            CheckpointVariable("key_array", (p.total_keys,),
                               VariableKind.INTEGER, dtype=np.int64,
                               critical_by_rule=True,
                               description="keys being ranked by the bucket "
                                           "sort"),
            CheckpointVariable("bucket_ptrs", (p.num_buckets,),
                               VariableKind.INTEGER, dtype=np.int64,
                               critical_by_rule=True,
                               description="bucket start offsets of the "
                                           "counting sort"),
            CheckpointVariable("iteration", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="main-loop index"),
        )

    # ------------------------------------------------------------------
    # constant data
    # ------------------------------------------------------------------
    def _make_keys(self) -> np.ndarray:
        """Initial key sequence (fixed-seed surrogate of ``create_seq``)."""
        p = self.params
        rng = np.random.default_rng(314159265)
        return rng.integers(0, p.max_key, size=p.total_keys, dtype=np.int64)

    def _make_test_indices(self) -> np.ndarray:
        """Positions of the keys spot-checked by the partial verification."""
        p = self.params
        rng = np.random.default_rng(271828183)
        return rng.choice(p.total_keys, size=self.test_array_size,
                          replace=False)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        keys = np.array(self._initial_keys, copy=True)
        bucket_ptrs = self._bucket_pointers(keys)
        return {
            "passed_verification": 0,
            "key_array": keys,
            "bucket_ptrs": bucket_ptrs,
            "iteration": 0,
        }

    # ------------------------------------------------------------------
    # ranking
    # ------------------------------------------------------------------
    def _bucket_pointers(self, keys: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum of the per-bucket key counts."""
        p = self.params
        buckets = keys >> self._shift
        counts = np.bincount(buckets, minlength=p.num_buckets)[: p.num_buckets]
        ptrs = np.zeros(p.num_buckets, dtype=np.int64)
        np.cumsum(counts[:-1], out=ptrs[1:])
        return ptrs

    def _rank(self, keys: np.ndarray) -> np.ndarray:
        """Rank of every key: number of strictly smaller keys."""
        p = self.params
        counts = np.bincount(keys, minlength=p.max_key)
        cumulative = np.zeros(p.max_key, dtype=np.int64)
        np.cumsum(counts[:-1], out=cumulative[1:])
        return cumulative[keys]

    def _partial_verification(self, keys: np.ndarray,
                              ranks: np.ndarray) -> bool:
        """Spot-check the ranks of the fixed test keys.

        A key's rank must equal the count of strictly smaller keys; the
        spot check recomputes that count directly (an O(test_array_size * n)
        scan, as cheap "ground truth") and compares.
        """
        for idx in self._test_indices:
            expected = int(np.count_nonzero(keys < keys[idx]))
            if int(ranks[idx]) != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        p = self.params
        iteration = int(state["iteration"]) + 1
        keys = np.array(state["key_array"], copy=True)
        # the original perturbs two keys per iteration before re-ranking
        keys[iteration] = iteration
        keys[iteration + p.niter] = p.max_key - iteration
        ranks = self._rank(keys)
        bucket_ptrs = self._bucket_pointers(keys)
        passed = int(state["passed_verification"])
        if self._partial_verification(keys, ranks):
            passed += 1
        return {
            "passed_verification": passed,
            "key_array": keys,
            "bucket_ptrs": bucket_ptrs,
            "iteration": iteration,
        }

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def output(self, state: Mapping[str, Any]):
        """Scalar output (IS has no floating-point checkpoint variables)."""
        return np.float64(int(state["passed_verification"])
                          + int(state["iteration"]))

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        p = self.params
        final = concrete_state(state)
        keys = np.asarray(final["key_array"])
        ranks = self._rank(keys)
        # ordering keys by their computed rank (stable for ties) must give a
        # non-decreasing sequence -- the "full verification" of the original
        sorted_keys = keys[np.argsort(ranks, kind="stable")]
        full_sort_ok = bool(np.all(np.diff(sorted_keys) >= 0))
        partial_ok = int(final["passed_verification"]) == int(
            final["iteration"])
        ran_all = int(final["iteration"]) == p.niter
        passed = full_sort_ok and partial_ok and ran_all
        details = {
            "partial_verifications": float(final["passed_verification"]),
            "iterations": float(final["iteration"]),
        }
        return VerificationResult(self.name, passed, self.epsilon, details,
                                  notes="" if passed else
                                  "full or partial verification failed")
