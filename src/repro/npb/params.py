"""Problem-class parameters for the NPB mini-app ports.

The paper evaluates with input class **S** because its array sizes are small
enough to visualise element-by-element.  This module records, per benchmark,
the class-S shapes from Table I of the paper (which match the SNU C version
of NPB 3.3) plus a reduced "T" (tiny) class used by the unit tests so the
full suite stays fast.  Class S is the default everywhere the paper's numbers
are reproduced (experiments and benchmarks).

Only the parameters the ports actually consume are modelled; compile-time
constants of the original codes that do not influence the checkpoint
analysis (cache-blocking factors, timer switches, ...) are omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ProblemClass",
    "BTParams", "SPParams", "LUParams", "MGParams", "CGParams",
    "FTParams", "EPParams", "ISParams",
    "params_for",
    "CLASSES",
]


#: recognised problem classes; "S" reproduces the paper, "T" is a reduced
#: size for fast unit testing, "A" is the enlarged scenario unlocked by the
#: segmented reverse sweep (registered for the benchmarks where the larger
#: size is interesting: CG, FT, MG and SP scale their arrays, EP and IS
#: their main-loop length)
CLASSES = ("T", "S", "A")


class ProblemClass(str):
    """Thin string subtype for problem classes (documentation purposes)."""


@dataclass(frozen=True)
class BTParams:
    """Block Tri-diagonal solver (BT) parameters."""

    problem_class: str = "S"
    #: number of grid points per dimension actually used by the solver
    grid_points: int = 12
    #: leading (k) dimension of ``u``; equals ``grid_points``
    kmax: int = 12
    #: padded j/i dimensions of ``u`` (``IMAXP + 1`` in the C source)
    jmax: int = 13
    imax: int = 13
    #: main-loop iterations (``niter_default``)
    niter: int = 60
    #: pseudo-time step
    dt: float = 0.010
    #: number of PDE components
    ncomp: int = 5

    @property
    def u_shape(self) -> tuple[int, int, int, int]:
        """Shape of the solution array ``u`` (Table I: u[12][13][13][5])."""
        return (self.kmax, self.jmax, self.imax, self.ncomp)


@dataclass(frozen=True)
class SPParams:
    """Scalar Pentadiagonal solver (SP) parameters (same layout as BT)."""

    problem_class: str = "S"
    grid_points: int = 12
    kmax: int = 12
    jmax: int = 13
    imax: int = 13
    niter: int = 100
    dt: float = 0.015
    ncomp: int = 5

    @property
    def u_shape(self) -> tuple[int, int, int, int]:
        """Shape of the solution array ``u`` (Table I: u[12][13][13][5])."""
        return (self.kmax, self.jmax, self.imax, self.ncomp)


@dataclass(frozen=True)
class LUParams:
    """Lower-Upper symmetric Gauss-Seidel solver (LU) parameters."""

    problem_class: str = "S"
    grid_points: int = 12
    kmax: int = 12
    jmax: int = 13
    imax: int = 13
    niter: int = 50
    dt: float = 0.5
    #: SSOR relaxation factor
    omega: float = 1.2
    ncomp: int = 5

    @property
    def u_shape(self) -> tuple[int, int, int, int]:
        """Shape of ``u`` and ``rsd`` (Table I: [12][13][13][5])."""
        return (self.kmax, self.jmax, self.imax, self.ncomp)

    @property
    def scalar_field_shape(self) -> tuple[int, int, int]:
        """Shape of ``rho_i`` and ``qs`` (Table I: [12][13][13])."""
        return (self.kmax, self.jmax, self.imax)


@dataclass(frozen=True)
class MGParams:
    """MultiGrid (MG) parameters.

    The NPB MG code stores the whole multigrid hierarchy of ``u`` and ``r``
    in flat arrays; class S declares them with 46480 elements (the value the
    paper reports).  The finest level is a 34x34x34 block at offset 0 and
    each coarser level follows contiguously; the tail of the allocation is
    never touched, exactly as in the original code.
    """

    problem_class: str = "S"
    #: problem size of the finest grid (32**3 for class S)
    nx: int = 32
    #: number of multigrid levels (lt); level k has (2**k + 2)**3 points
    levels: int = 5
    #: declared length of the flat ``u`` and ``r`` arrays
    nr: int = 46480
    #: main-loop (V-cycle) iterations
    niter: int = 4
    #: smoother weights (c / a coefficient flavour of the original)
    smoother_weight: float = -0.25
    residual_weight: float = -0.5

    def level_sizes(self) -> list[int]:
        """Per-dimension padded size of each level, finest first."""
        return [2 ** k + 2 for k in range(self.levels, 0, -1)]

    def level_offsets(self) -> list[int]:
        """Flat-array offset of each level, finest first (finest at 0)."""
        offsets = []
        off = 0
        for n in self.level_sizes():
            offsets.append(off)
            off += n ** 3
        return offsets

    @property
    def used_elements(self) -> int:
        """Number of flat elements actually covered by the level layout."""
        return sum(n ** 3 for n in self.level_sizes())


@dataclass(frozen=True)
class CGParams:
    """Conjugate Gradient (CG) parameters."""

    problem_class: str = "S"
    #: order of the linear system (NA); ``x`` is declared with NA + 2 slots
    na: int = 1400
    #: declared length of the iterate vector ``x``
    x_len: int = 1402
    #: nonzeros per row used when generating the sparse matrix
    nonzer: int = 7
    #: outer (main-loop) iterations
    niter: int = 15
    #: inner conjugate-gradient iterations per outer iteration
    cgit: int = 25
    #: eigenvalue shift used by the benchmark
    shift: float = 10.0
    #: reference zeta for class S (used by the verification phase)
    zeta_verify: float = 8.5971775078648


@dataclass(frozen=True)
class FTParams:
    """3-D Fast Fourier Transform (FT) parameters.

    Class S uses a 64x64x64 grid; the checkpointed spectrum array ``y`` is
    declared 64x64x65 (one plane of padding on the last dimension), which is
    what creates the uncritical top layer of Figure 8.
    """

    problem_class: str = "S"
    nx: int = 64
    ny: int = 64
    #: padded extent of the last dimension of ``y``
    nz_pad: int = 65
    #: logical extent of the last dimension
    nz: int = 64
    #: main-loop iterations (number of checksums)
    niter: int = 6
    #: evolution constant alpha of the benchmark
    alpha: float = 1.0e-6

    @property
    def y_shape(self) -> tuple[int, int, int]:
        """Shape of ``y`` in dcomplex elements (Table I: [64][64][65])."""
        return (self.nx, self.ny, self.nz_pad)


@dataclass(frozen=True)
class EPParams:
    """Embarrassingly Parallel (EP) parameters.

    Class S draws ``2**m`` pairs of uniform deviates in batches of ``2**nk``
    and converts them to Gaussian pairs with the Marsaglia polar method,
    accumulating the sums ``sx`` and ``sy`` and the annulus counts ``q``.
    """

    problem_class: str = "S"
    #: log2 of the total number of pairs
    m: int = 24
    #: log2 of the batch size
    nk: int = 16
    #: number of annuli counted in ``q``
    nq: int = 10
    #: reference sums for class S verification
    sx_verify: float = -3.247834652034740e3
    sy_verify: float = -6.958407078382297e3

    @property
    def n_batches(self) -> int:
        """Number of main-loop iterations (batches of ``2**nk`` pairs)."""
        return 2 ** (self.m - self.nk)


@dataclass(frozen=True)
class ISParams:
    """Integer Sort (IS) parameters (Table I sizes for class S)."""

    problem_class: str = "S"
    #: number of keys to sort
    total_keys: int = 65536
    #: keys are drawn from [0, max_key)
    max_key: int = 2048
    #: number of buckets used by the bucketised ranking
    num_buckets: int = 512
    #: main-loop iterations
    niter: int = 10
    #: number of (rank, key) pairs spot-checked per iteration
    test_array_size: int = 5


_S_PARAMS = {
    "BT": BTParams(),
    "SP": SPParams(),
    "LU": LUParams(),
    "MG": MGParams(),
    "CG": CGParams(),
    "FT": FTParams(),
    "EP": EPParams(),
    "IS": ISParams(),
}

# A reduced problem class so unit tests exercise every code path quickly.
_T_PARAMS = {
    "BT": BTParams(problem_class="T", grid_points=6, kmax=6, jmax=7, imax=7,
                   niter=8),
    "SP": SPParams(problem_class="T", grid_points=6, kmax=6, jmax=7, imax=7,
                   niter=8),
    "LU": LUParams(problem_class="T", grid_points=6, kmax=6, jmax=7, imax=7,
                   niter=8),
    "MG": MGParams(problem_class="T", nx=8, levels=3, nr=1400, niter=2),
    "CG": CGParams(problem_class="T", na=60, x_len=62, nonzer=4, niter=4,
                   cgit=10, zeta_verify=float("nan")),
    "FT": FTParams(problem_class="T", nx=8, ny=8, nz_pad=9, nz=8, niter=3),
    "EP": EPParams(problem_class="T", m=12, nk=8,
                   sx_verify=float("nan"), sy_verify=float("nan")),
    "IS": ISParams(problem_class="T", total_keys=2048, max_key=256,
                   num_buckets=64, niter=4),
}


# The enlarged "A" scenario: larger arrays and/or more main-loop iterations
# than class S.  Sized so a *segmented* reverse sweep analyses them
# comfortably while a monolithic tape of the whole remaining loop is an
# order of magnitude more memory-hungry -- the problem sizes the segmented
# sweep unlocks.  (The original NPB class-A dimensions are larger still;
# these keep the pure-numpy ports tractable while preserving the paper's
# structural findings: CG's two trailing slack slots, FT's padding plane.)
_A_PARAMS = {
    "CG": CGParams(problem_class="A", na=2800, x_len=2802, nonzer=9,
                   niter=30, cgit=25, shift=20.0,
                   zeta_verify=float("nan")),
    "FT": FTParams(problem_class="A", nx=96, ny=96, nz_pad=65, nz=64,
                   niter=10),
    # MG is the first stencil port with a class A: a 16**3 finest grid over
    # four V-cycle levels (the flat hierarchy uses 7112 of 7400 declared
    # slots) with twice the class-S iteration count -- the dense-stencil
    # tape regime the segmented sweep and the chained activity analysis
    # are for
    "MG": MGParams(problem_class="A", nx=16, levels=4, nr=7400, niter=8),
    # SP is the first ADI port with a class A: a 16**3 grid (past the
    # class-S 12**3, with the same one-plane jmax/imax padding) and a
    # 2.5x class-T iteration count -- per-iteration tapes dense enough
    # that the compiled replay plans' fusion/packing passes have real
    # elementwise chains to work on.  (BT stays class S/T only, keeping
    # the params_for error path for unregistered classes exercised.)
    "SP": SPParams(problem_class="A", grid_points=16, kmax=16, jmax=17,
                   imax=17, niter=20),
    # the two simple ports scale by loop length, not array size: EP's
    # class A doubles the class-S batch count (smaller batches keep the
    # per-iteration cost test-friendly), IS quadruples the ranked key
    # volume and the iteration count -- both are the long-main-loop regime
    # the segmented sweep's snapshot schedules are about
    "EP": EPParams(problem_class="A", m=19, nk=10,
                   sx_verify=float("nan"), sy_verify=float("nan")),
    "IS": ISParams(problem_class="A", total_keys=131072, max_key=4096,
                   num_buckets=1024, niter=40),
}


def params_for(benchmark: str, problem_class: str = "S"):
    """Return the parameter dataclass for ``benchmark`` and ``problem_class``.

    Raises ``KeyError`` for unknown benchmarks (or for benchmarks the
    requested class is not registered for) and ``ValueError`` for unknown
    classes, so callers get precise error messages.
    """
    benchmark = benchmark.upper()
    problem_class = problem_class.upper()
    if problem_class == "S":
        table = _S_PARAMS
    elif problem_class == "T":
        table = _T_PARAMS
    elif problem_class == "A":
        table = _A_PARAMS
    else:
        raise ValueError(f"unknown problem class {problem_class!r}; "
                         f"supported classes: {CLASSES}")
    if benchmark not in table:
        if benchmark in _S_PARAMS:
            raise KeyError(
                f"benchmark {benchmark!r} has no class-{problem_class} "
                f"parameters; class {problem_class} is registered for: "
                f"{sorted(table)}")
        raise KeyError(f"unknown benchmark {benchmark!r}; "
                       f"known: {sorted(_S_PARAMS)}")
    return table[benchmark]
