"""Benchmark registry: the paper's Table I as code.

Maps benchmark names to their port classes and exposes the "variables
necessary for checkpointing" inventory so the experiment drivers
(:mod:`repro.experiments.table1` and friends) and the CLI can enumerate the
suite without importing every kernel module by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Type

from repro.core.variables import CheckpointVariable

from .base import NPBBenchmark
from .bt import BT
from .cg import CG
from .ep import EP
from .ft import FT
from .is_ import IS
from .lu import LU
from .mg import MG
from .sp import SP

__all__ = [
    "BENCHMARKS",
    "BenchmarkEntry",
    "available_benchmarks",
    "create",
    "iter_benchmarks",
    "table1_rows",
]


#: benchmark name -> port class, in the order the paper's Table I lists them
BENCHMARKS: dict[str, Type[NPBBenchmark]] = {
    "BT": BT,
    "SP": SP,
    "MG": MG,
    "CG": CG,
    "LU": LU,
    "FT": FT,
    "EP": EP,
    "IS": IS,
}


@dataclass(frozen=True)
class BenchmarkEntry:
    """One row of the Table I inventory."""

    name: str
    variables: tuple[CheckpointVariable, ...]

    @property
    def declaration(self) -> str:
        """C-style declaration list, as printed in the paper's Table I."""
        return ", ".join(str(v) for v in self.variables)


def available_benchmarks() -> tuple[str, ...]:
    """Names of all ported benchmarks, in Table I order."""
    return tuple(BENCHMARKS)


def create(name: str, problem_class: str = "S") -> NPBBenchmark:
    """Instantiate the port of benchmark ``name`` for ``problem_class``.

    Raises ``KeyError`` with the list of known names for typos, so callers
    (CLI, experiment drivers) produce an actionable message.
    """
    key = name.upper()
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {', '.join(BENCHMARKS)}")
    return BENCHMARKS[key](problem_class=problem_class)


def iter_benchmarks(problem_class: str = "S",
                    names: Sequence[str] | None = None
                    ) -> Iterator[NPBBenchmark]:
    """Yield instantiated ports (all of them, or the subset in ``names``)."""
    for name in (names or available_benchmarks()):
        yield create(name, problem_class)


def table1_rows(problem_class: str = "S") -> list[BenchmarkEntry]:
    """The Table I inventory: benchmark name -> checkpoint variables."""
    rows = []
    for bench in iter_benchmarks(problem_class):
        rows.append(BenchmarkEntry(bench.name,
                                   tuple(bench.checkpoint_variables())))
    return rows
