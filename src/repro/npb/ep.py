"""EP -- Embarrassingly Parallel (Gaussian deviate) benchmark port.

Checkpoint variables (paper Table I, class S)::

    double sx, sy
    double q[10]
    int    k

Every main-loop iteration draws a batch of ``2**nk`` pairs of uniform
deviates from the NPB ``randlc`` stream (each batch seeded independently via
the ``ipow46`` jump-ahead, which is what makes the benchmark embarrassingly
parallel), converts accepted pairs to independent Gaussian deviates with the
Marsaglia polar method, and accumulates

* ``sx`` / ``sy`` -- the sums of the Gaussian deviates in X and Y,
* ``q[l]``       -- the count of pairs whose largest coordinate magnitude
  falls in annulus ``l``.

All three are read-modify-write accumulators, so every element is critical
for checkpointing (EP therefore has no rows in the paper's Table II); the
loop counter ``k`` is critical by rule.  This port exists so the analysis,
the checkpoint library and the Section IV-C restart-verification experiment
cover the full 8-benchmark suite.

The uniform stream is the exact NPB generator (:mod:`repro.npb.common`), so
batches are bit-reproducible and restarting from a checkpoint continues the
identical stream.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import (DEFAULT_SEED, LCG_MULTIPLIER, RandlcStream,
                     VerificationResult, ipow46, randlc)

__all__ = ["EP"]


class EP(NPBBenchmark):
    """Embarrassingly Parallel benchmark surrogate (see module docstring)."""

    name = "EP"
    #: verification tolerance on the accumulated sums (NPB uses 1e-8)
    epsilon = 1.0e-8

    def __init__(self, params=None, problem_class: str = "S") -> None:
        from .params import params_for

        super().__init__(params or params_for("EP", problem_class))
        #: uniforms drawn per batch (two per candidate pair)
        self._batch_draws = 2 * (2 ** self.params.nk)
        self._stream = RandlcStream(self._batch_draws)
        self._reference: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        return (
            CheckpointVariable("sx", (), VariableKind.FLOAT,
                               description="sum of Gaussian deviates, X "
                                           "dimension"),
            CheckpointVariable("sy", (), VariableKind.FLOAT,
                               description="sum of Gaussian deviates, Y "
                                           "dimension"),
            CheckpointVariable("q", (self.params.nq,), VariableKind.FLOAT,
                               description="per-annulus pair counts"),
            CheckpointVariable("k", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="main-loop (batch) index"),
        )

    @property
    def total_steps(self) -> int:
        return self.params.n_batches

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        return {
            "sx": np.float64(0.0),
            "sy": np.float64(0.0),
            "q": np.zeros(self.params.nq, dtype=np.float64),
            "k": 0,
        }

    # ------------------------------------------------------------------
    # batch generation
    # ------------------------------------------------------------------
    def _batch_seed(self, batch: int) -> float:
        """Generator state immediately before batch ``batch`` (0-based).

        Batch ``b`` starts after ``b * 2 * 2**nk`` draws; the jump-ahead
        computes ``a ** offset mod 2**46`` and multiplies it onto the seed,
        exactly as the original does per parallel chunk.
        """
        offset = batch * self._batch_draws
        if offset == 0:
            return DEFAULT_SEED
        t = ipow46(LCG_MULTIPLIER, offset)
        _, state = randlc(DEFAULT_SEED, t)
        return state

    def _batch_sums(self, batch: int) -> tuple[float, float, np.ndarray]:
        """Gaussian sums and annulus counts contributed by one batch."""
        uniforms, _ = self._stream.uniforms(self._batch_seed(batch))
        x = 2.0 * uniforms[0::2] - 1.0
        y = 2.0 * uniforms[1::2] - 1.0
        t = x * x + y * y
        accept = (t <= 1.0) & (t > 0.0)
        xa, ya, ta = x[accept], y[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        gx = xa * factor
        gy = ya * factor
        annulus = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        annulus = np.clip(annulus, 0, self.params.nq - 1)
        counts = np.bincount(annulus, minlength=self.params.nq).astype(
            np.float64)
        return float(gx.sum()), float(gy.sum()), counts

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        batch = int(state["k"])
        bsx, bsy, counts = self._batch_sums(batch)
        return {
            "sx": state["sx"] + bsx,
            "sy": state["sy"] + bsy,
            "q": state["q"] + counts,
            "k": batch + 1,
        }

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def output(self, state: Mapping[str, Any]):
        """Scalar output combining the sums and the annulus histogram."""
        weights = np.arange(1, self.params.nq + 1, dtype=np.float64)
        return (state["sx"] + state["sy"]
                + 1.0e-3 * ops.sum(state["q"] * weights))

    def _reference_values(self) -> dict[str, Any]:
        if self._reference is None:
            final = concrete_state(self.run(self.initial_state(),
                                            self.total_steps))
            self._reference = {
                "sx": float(final["sx"]),
                "sy": float(final["sy"]),
                "gc": float(np.sum(final["q"])),
            }
        return self._reference

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        reference = self._reference_values()
        final = concrete_state(state)
        got = {"sx": float(final["sx"]), "sy": float(final["sy"]),
               "gc": float(np.sum(final["q"]))}
        details: dict[str, float] = {}
        passed = True
        for key, ref in reference.items():
            denom = abs(ref) if ref != 0.0 else 1.0
            rel = abs(got[key] - ref) / denom
            details[key] = float(rel)
            if not np.isfinite(rel) or rel > self.epsilon:
                passed = False
        return VerificationResult(self.name, passed, self.epsilon, details)
