"""Python ports of the NAS Parallel Benchmarks (the paper's workloads).

Each port reproduces, at the class-S memory layout of the paper's Table I,
the *data access structure* of the original benchmark between a restart
point and its verification output -- the property that determines which
elements of its checkpoint variables are critical.  The kernels are written
against :mod:`repro.ad.ops` so the same code runs on plain NumPy arrays
(production path) and on traced arrays (analysis path).

Use :mod:`repro.npb.registry` to enumerate or instantiate benchmarks::

    from repro.npb import registry
    bench = registry.create("BT", problem_class="S")
    state = bench.checkpoint_state(step=30)
"""

from .base import NPBBenchmark, concrete_state, copy_state
from .bt import BT
from .cg import CG
from .common import VerificationResult
from .ep import EP
from .ft import FT
from .is_ import IS
from .lu import LU
from .mg import MG
from .params import params_for
from .sp import SP
from . import registry

__all__ = [
    "NPBBenchmark",
    "VerificationResult",
    "concrete_state",
    "copy_state",
    "params_for",
    "registry",
    "BT", "SP", "LU", "MG", "CG", "FT", "EP", "IS",
]
