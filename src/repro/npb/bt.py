"""BT -- Block Tri-diagonal pseudo-application port.

Checkpoint variables (paper Table I, class S)::

    double u[12][13][13][5]
    int    step

The paper finds 1500 of the 10140 elements of ``u`` uncritical (14.8 %):
exactly the padded planes at ``j == 12`` and ``i == 12`` that the
``error_norm`` and solver loops never touch (Figures 2 and 3).  This port
reproduces that access structure; see :mod:`repro.npb.structured` for the
shared BT/SP driver and DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from .params import BTParams, params_for
from .structured import StructuredPDEBenchmark

__all__ = ["BT"]


class BT(StructuredPDEBenchmark):
    """Block Tri-diagonal solver surrogate.

    The block character of the original ADI solver is represented by a
    uniform (component-coupled) damping of the interior update; the data
    accesses -- which drive the criticality analysis -- follow the original
    ``compute_rhs`` / ``add`` / ``error_norm`` index ranges.
    """

    name = "BT"
    step_name = "step"
    nonlinear_coeff = 0.1

    def __init__(self, params: BTParams | None = None,
                 problem_class: str = "S") -> None:
        super().__init__(params or params_for("BT", problem_class))

    def _solver_damping(self, speed):
        # Block tri-diagonal solve: one implicit factor shared by all five
        # components; a constant under-relaxation models its effect on the
        # explicit update without changing which elements are read.
        del speed
        return 0.9
