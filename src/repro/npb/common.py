"""Shared infrastructure for the NPB mini-app ports.

This module reimplements the pieces of the original NPB common code the
ports rely on:

* the NPB linear congruential pseudo-random number generator ``randlc``
  (x_{k+1} = a * x_k mod 2**46) including the exact double-double arithmetic
  of the reference implementation, a vectorised ``vranlc`` and the
  ``ipow46`` jump-ahead used by EP to seed independent batches;
* root-mean-square norms in the style of the BT/SP/LU ``error_norm`` and
  ``rhs_norm`` routines, written against :mod:`repro.ad.ops` so they are
  differentiable when handed traced arrays;
* a small :class:`VerificationResult` record mirroring the pass/fail
  verification output every NPB benchmark prints.

The generator follows the reference semantics bit-for-bit (it is exercised
against the published first values of the sequence in the test-suite), which
matters because EP's verification sums are defined by this exact stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.ad import ops

__all__ = [
    "R23", "R46", "T23", "T46", "DEFAULT_SEED", "LCG_MULTIPLIER",
    "randlc", "vranlc", "ipow46", "RandlcStream",
    "rms_norm", "weighted_abs_sum",
    "VerificationResult", "relative_error", "within_epsilon",
]


# Constants of the NPB generator: 2**-23, 2**-46, 2**23, 2**46.
R23 = 2.0 ** -23
R46 = R23 * R23
T23 = 2.0 ** 23
T46 = T23 * T23

#: default seed used across the suite (``seed = 314159265``)
DEFAULT_SEED = 314159265.0

#: multiplier ``a = 5**13`` of the NPB generator
LCG_MULTIPLIER = 1220703125.0


def randlc(x: float, a: float) -> tuple[float, float]:
    """One step of the NPB generator.

    Computes ``x_new = a * x mod 2**46`` using the reference double-double
    decomposition and returns ``(uniform, x_new)`` where ``uniform`` is
    ``x_new * 2**-46`` in ``(0, 1)``.

    Parameters mirror the original: ``x`` is the current 46-bit state stored
    in a float, ``a`` the multiplier.
    """
    t1 = R23 * a
    a1 = float(int(t1))
    a2 = a - T23 * a1

    t1 = R23 * x
    x1 = float(int(t1))
    x2 = x - T23 * x1

    t1 = a1 * x2 + a2 * x1
    t2 = float(int(R23 * t1))
    z = t1 - T23 * t2
    t3 = T23 * z + a2 * x2
    t4 = float(int(R46 * t3))
    x_new = t3 - T46 * t4
    return R46 * x_new, x_new


def vranlc(n: int, x: float, a: float) -> tuple[np.ndarray, float]:
    """Generate ``n`` uniforms sequentially, returning ``(array, new_state)``.

    This is the reference sequential algorithm (a Python loop).  It is used
    for moderate ``n`` and as the ground truth the vectorised
    :class:`RandlcStream` is tested against.
    """
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        out[i], x = randlc(x, a)
    return out, x


def ipow46(a: float, exponent: int) -> float:
    """Compute ``a ** exponent mod 2**46`` with the NPB square-and-multiply.

    Used to jump the generator ahead by ``exponent`` steps in O(log n)
    ``randlc`` calls; EP seeds every batch this way so batches can be
    generated independently (and, here, vectorised).
    """
    result = 1.0
    if exponent == 0:
        return result
    q = a
    r = 1.0
    n = exponent
    while n > 1:
        n2 = n // 2
        if 2 * n2 == n:
            _, q = randlc(q, q)
            n = n2
        else:
            _, r = randlc(r, q)
            n = n - 1
    _, r = randlc(r, q)
    return r


class RandlcStream:
    """Vectorised NPB random stream with jump-ahead.

    The sequential recurrence ``x_{k+1} = a * x_k mod 2**46`` implies
    ``x_k = (a**k mod 2**46) * x_0 mod 2**46``.  The constructor builds the
    table ``a**k mod 2**46`` for ``k < block`` once (a single Python loop);
    :meth:`uniforms` then produces any block of the stream with pure NumPy
    arithmetic, using the same 23-bit split modular product as ``randlc`` so
    results match the sequential reference exactly.
    """

    def __init__(self, block: int, a: float = LCG_MULTIPLIER) -> None:
        if block < 1:
            raise ValueError("block size must be positive")
        self.block = int(block)
        self.a = float(a)
        powers = np.empty(self.block, dtype=np.float64)
        powers[0] = 1.0
        x = 1.0
        for k in range(1, self.block):
            _, x = randlc(x, a)
            powers[k] = x
        self._powers = powers

    @staticmethod
    def _mod_mul(a: np.ndarray, x: float) -> np.ndarray:
        """Vectorised ``a * x mod 2**46`` with the reference bit splitting."""
        a = np.asarray(a, dtype=np.float64)
        a1 = np.floor(R23 * a)
        a2 = a - T23 * a1
        x1 = float(int(R23 * x))
        x2 = x - T23 * x1
        t1 = a1 * x2 + a2 * x1
        t2 = np.floor(R23 * t1)
        z = t1 - T23 * t2
        t3 = T23 * z + a2 * x2
        t4 = np.floor(R46 * t3)
        return t3 - T46 * t4

    def uniforms(self, seed_state: float, n: int | None = None) -> tuple[np.ndarray, float]:
        """Return ``n`` uniforms starting from ``seed_state``.

        ``seed_state`` is the generator state *before* the block (the value
        ``x`` such that the first returned uniform is ``a * x mod 2**46``
        scaled to (0,1)), matching ``vranlc`` semantics.  Also returns the
        state after the block, so blocks can be chained.
        """
        n = self.block if n is None else int(n)
        if n > self.block:
            raise ValueError(f"requested {n} numbers from a stream with "
                             f"block size {self.block}")
        # x_k = a^k * seed mod 2**46 for k = 1..n
        states = self._mod_mul(self._powers[:n], self._mod_mul(
            np.array([self.a]), seed_state)[0])
        new_state = float(states[-1]) if n > 0 else seed_state
        return R46 * states, new_state


# ---------------------------------------------------------------------------
# differentiable norms used by the verification phases
# ---------------------------------------------------------------------------

def rms_norm(field: Any, n_points: Sequence[int]):
    """Root-mean-square norm in the style of BT/SP ``error_norm``.

    ``field`` is the (possibly traced) array of pointwise differences already
    restricted to the accessed index range; ``n_points`` are the grid extents
    the original code divides by (``grid_points[d] - 2``).
    """
    total = ops.sum(ops.square(field))
    denom = 1.0
    for n in n_points:
        denom *= float(n - 2)
    return ops.sqrt(ops.divide(total, denom))


def weighted_abs_sum(field: Any, weights: Any):
    """Differentiable ``sum(|field| * weights)`` helper for scalar outputs."""
    return ops.sum(ops.absolute(field) * weights)


# ---------------------------------------------------------------------------
# verification records
# ---------------------------------------------------------------------------

def relative_error(value: float, reference: float) -> float:
    """NPB-style relative error ``|(value - reference) / reference|``."""
    if reference == 0.0:
        return abs(value)
    return abs((value - reference) / reference)


def within_epsilon(value: float, reference: float, epsilon: float) -> bool:
    """True when ``value`` matches ``reference`` within relative ``epsilon``."""
    return relative_error(value, reference) <= epsilon


@dataclass
class VerificationResult:
    """Outcome of a benchmark's verification phase.

    Mirrors the ``verified`` flag the NPB codes print, with enough structure
    for the restart-correctness experiments to report per-quantity errors.
    """

    benchmark: str
    passed: bool
    epsilon: float
    details: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def summary(self) -> str:
        """One-line, human-readable summary of the verification outcome."""
        status = "SUCCESSFUL" if self.passed else "UNSUCCESSFUL"
        parts = [f"{self.benchmark}: verification {status} "
                 f"(epsilon={self.epsilon:g})"]
        for key, err in sorted(self.details.items()):
            parts.append(f"  {key}: rel.err={err:.3e}")
        if self.notes:
            parts.append(f"  note: {self.notes}")
        return "\n".join(parts)
