"""SP -- Scalar Pentadiagonal pseudo-application port.

Checkpoint variables (paper Table I, class S)::

    double u[12][13][13][5]
    int    step

SP shares BT's layout and verification structure; the paper finds the same
critical/uncritical distribution in ``u`` (1500 uncritical elements at the
padded ``j == 12`` / ``i == 12`` planes, Figure 3) because both call the same
``error_norm``.  The solver difference is modelled by a speed-dependent
scalar damping of the interior update (the original factorises into scalar
pentadiagonal systems using the sound speed), which reads the ``speed``
auxiliary field and therefore, like the original, touches component 4 of
``u`` on the whole used sub-grid.
"""

from __future__ import annotations

from repro.ad import ops

from .params import SPParams, params_for
from .structured import StructuredPDEBenchmark

__all__ = ["SP"]


class SP(StructuredPDEBenchmark):
    """Scalar Pentadiagonal solver surrogate (see module docstring)."""

    name = "SP"
    step_name = "step"
    nonlinear_coeff = 0.08

    def __init__(self, params: SPParams | None = None,
                 problem_class: str = "S") -> None:
        super().__init__(params or params_for("SP", problem_class))

    def _solver_damping(self, speed):
        # Scalar pentadiagonal solve: damping varies with the local sound
        # speed on the interior (bounded away from zero so no element's
        # influence is accidentally annihilated).
        gp = self.params.grid_points
        interior_speed = speed[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        return 0.8 / (1.0 + 0.05 * interior_speed)
