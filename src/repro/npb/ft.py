"""FT -- 3-D Fast Fourier Transform benchmark port.

Checkpoint variables (paper Table I, class S)::

    dcomplex y[64][64][65]
    dcomplex sums[6]
    int      kt

``dcomplex`` is the NPB struct of two doubles; in the state dict every
dcomplex variable is carried as a pair of float arrays ``<name>_re`` /
``<name>_im`` (see :class:`repro.core.variables.VariableKind.COMPLEX_PAIR`).

The benchmark computes the spectrum ``y`` of a random initial field once,
then for every main-loop iteration ``t`` evolves the spectrum with the
analytic heat-kernel factor, transforms back to physical space and
accumulates a checksum over a fixed set of sample points into ``sums[t]``.
``y`` itself is never modified, so it must be checkpointed; ``sums`` is
accumulated into (read-modify-write), so every entry of its checkpointed
value is critical.

The paper's finding this port reproduces (Table II, Figure 8): ``y`` is
declared ``64 x 64 x 65`` -- one padding plane on the last dimension -- but
only ``k = 0 .. 63`` is ever read, leaving exactly the ``64 x 64`` top layer
(4096 elements, 1.5 %) uncritical.

Substitutions (documented in DESIGN.md): the random initial field uses a
fixed-seed NumPy generator instead of ``vranlc``; the inverse transform is an
explicit DFT-matrix product along each axis (mathematically identical to the
original stockham FFT, and differentiable through :mod:`repro.ad.ops`); the
checksum sample points are a fixed pseudo-random *proper* subset instead of
the original arithmetic progression, verified at construction so that no
spectral coefficient has an exactly-zero structural weight in the checksum
(see :meth:`FT._make_sample_indices`; sampling every grid point would zero
out every non-DC weight, since the full-field sum only sees the DC
coefficient).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import VerificationResult

__all__ = ["FT"]


#: value stored in the padding plane ``y[:, :, nz]`` at initialisation
_PAD_FILL = 0.5


class FT(NPBBenchmark):
    """3-D FFT benchmark surrogate (see module docstring)."""

    name = "FT"
    #: verification tolerance on the per-iteration checksums (NPB uses 1e-12)
    epsilon = 1.0e-12
    #: number of checksum sample points per iteration (as in the original)
    n_samples = 1024

    def __init__(self, params=None, problem_class: str = "S") -> None:
        from .params import params_for

        super().__init__(params or params_for("FT", problem_class))
        p = self.params
        self._dft_cos, self._dft_sin = self._dft_matrices()
        self._sample_indices = self._make_sample_indices()
        self._k_squared = self._wavenumber_squared()
        self._initial_spectrum = self._make_initial_spectrum()
        self._reference: dict[str, float] | None = None
        del p

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        p = self.params
        return (
            CheckpointVariable("y", p.y_shape, VariableKind.COMPLEX_PAIR,
                               description="spectrum of the initial field "
                                           "(padded to 65 on the last "
                                           "dimension)"),
            CheckpointVariable("sums", (p.niter,), VariableKind.COMPLEX_PAIR,
                               description="accumulated per-iteration "
                                           "checksums"),
            CheckpointVariable("kt", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="main-loop index"),
        )

    # ------------------------------------------------------------------
    # constant data
    # ------------------------------------------------------------------
    def _dft_matrices(self) -> tuple[dict[int, np.ndarray],
                                     dict[int, np.ndarray]]:
        """Cosine/sine DFT matrices for every distinct axis length."""
        cos_m: dict[int, np.ndarray] = {}
        sin_m: dict[int, np.ndarray] = {}
        for n in {self.params.nx, self.params.ny, self.params.nz}:
            j = np.arange(n)
            angle = 2.0 * np.pi * np.outer(j, j) / n
            cos_m[n] = np.cos(angle)
            sin_m[n] = np.sin(angle)
        return cos_m, sin_m

    def _make_sample_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fixed pseudo-random checksum sample coordinates.

        The subset is drawn deterministically and *verified* to give every
        spectral coefficient a nonzero structural weight in the checksum:
        the weight of coefficient ``(i, j, k)`` is exactly the ``(i, j, k)``
        Fourier coefficient of the sample-indicator field, so a single
        ``fftn`` checks all of them at once.  Sampling the full grid (or any
        subset whose indicator has spectral zeros) would make the checksum
        mathematically independent of those coefficients, and whether a
        sweep then flags them critical would be decided by round-off noise
        rather than structure.  The subset is therefore capped to half the
        grid and redrawn until the verification passes.
        """
        p = self.params
        rng = np.random.default_rng(65537)
        total = p.nx * p.ny * p.nz
        count = min(self.n_samples, total // 2)
        while True:
            flat = rng.choice(total, size=count, replace=False)
            indicator = np.zeros(total, dtype=np.float64)
            indicator[flat] = 1.0
            weights = np.fft.fftn(indicator.reshape(p.nx, p.ny, p.nz))
            # exact spectral zeros show up at float noise (~count * eps);
            # genuine weights are O(sqrt(count)) random-walk sums
            if np.abs(weights).min() > 1.0e-6:
                break
        ki, rem = np.divmod(flat, p.ny * p.nz)
        kj, kk = np.divmod(rem, p.nz)
        return ki, kj, kk

    def _wavenumber_squared(self) -> np.ndarray:
        """Squared (signed) wavenumber magnitude on the logical grid."""
        p = self.params

        def freq(n: int) -> np.ndarray:
            k = np.arange(n)
            return np.where(k <= n // 2, k, k - n).astype(np.float64)

        fx = freq(p.nx)[:, None, None]
        fy = freq(p.ny)[None, :, None]
        fz = freq(p.nz)[None, None, :]
        return fx ** 2 + fy ** 2 + fz ** 2

    def _make_initial_spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        """Forward 3-D DFT of the fixed random initial field (real/imag)."""
        p = self.params
        rng = np.random.default_rng(271828183)
        field = rng.random((p.nx, p.ny, p.nz))
        spectrum = np.fft.fftn(field)
        return np.ascontiguousarray(spectrum.real), \
            np.ascontiguousarray(spectrum.imag)

    def _evolution_factor(self, t: int) -> np.ndarray:
        """Heat-kernel damping factor ``exp(-4 alpha pi^2 t k^2)``."""
        return np.exp(-4.0 * self.params.alpha * np.pi ** 2
                      * float(t) * self._k_squared)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        p = self.params
        y_re = np.full(p.y_shape, _PAD_FILL, dtype=np.float64)
        y_im = np.full(p.y_shape, _PAD_FILL, dtype=np.float64)
        spec_re, spec_im = self._initial_spectrum
        y_re[:, :, : p.nz] = spec_re
        y_im[:, :, : p.nz] = spec_im
        return {
            "y_re": y_re, "y_im": y_im,
            "sums_re": np.zeros(p.niter, dtype=np.float64),
            "sums_im": np.zeros(p.niter, dtype=np.float64),
            "kt": 0,
        }

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def _apply_axis(self, re: Any, im: Any, n: int, axis: int,
                    inverse: bool) -> tuple[Any, Any]:
        """One-axis DFT via an explicit matrix product (differentiable)."""
        cos_m = self._dft_cos[n]
        sin_m = self._dft_sin[n]

        def mat_apply(mat: np.ndarray, field: Any) -> Any:
            moved = ops.moveaxis(field, axis, 0)
            # logical_shape strips the probe axis of a batched sweep, so the
            # reshape targets below stay in logical coordinates
            rest_shape = tuple(ops.logical_shape(moved)[1:])
            rest = int(np.prod(rest_shape)) if rest_shape else 1
            flat = ops.reshape(moved, (n, rest))
            mixed = ops.matmul(mat, flat)
            return ops.moveaxis(ops.reshape(mixed, (n,) + rest_shape), 0, axis)

        if inverse:
            # W* / n  with  W = C - iS:  (C + iS)(a + ib) / n
            out_re = (mat_apply(cos_m, re) - mat_apply(sin_m, im)) / float(n)
            out_im = (mat_apply(cos_m, im) + mat_apply(sin_m, re)) / float(n)
        else:
            # W = C - iS:  (C - iS)(a + ib)
            out_re = mat_apply(cos_m, re) + mat_apply(sin_m, im)
            out_im = mat_apply(cos_m, im) - mat_apply(sin_m, re)
        return out_re, out_im

    def _inverse_transform(self, re: Any, im: Any) -> tuple[Any, Any]:
        """Inverse 3-D DFT of a logical-grid field (both components)."""
        p = self.params
        for axis, n in enumerate((p.nx, p.ny, p.nz)):
            re, im = self._apply_axis(re, im, n, axis, inverse=True)
        return re, im

    def _checksum(self, y_re: Any, y_im: Any, t: int) -> tuple[Any, Any]:
        """Evolve the spectrum to time ``t`` and sample the physical field."""
        p = self.params
        factor = self._evolution_factor(t)
        w_re = y_re[:, :, 0: p.nz] * factor
        w_im = y_im[:, :, 0: p.nz] * factor
        x_re, x_im = self._inverse_transform(w_re, w_im)
        ki, kj, kk = self._sample_indices
        chk_re = ops.sum(x_re[ki, kj, kk]) / float(p.nx * p.ny * p.nz)
        chk_im = ops.sum(x_im[ki, kj, kk]) / float(p.nx * p.ny * p.nz)
        return chk_re, chk_im

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        t = int(state["kt"]) + 1
        chk_re, chk_im = self._checksum(state["y_re"], state["y_im"], t)
        sums_re = ops.index_update(state["sums_re"], t - 1,
                                   state["sums_re"][t - 1] + chk_re)
        sums_im = ops.index_update(state["sums_im"], t - 1,
                                   state["sums_im"][t - 1] + chk_im)
        return {
            "y_re": state["y_re"], "y_im": state["y_im"],
            "sums_re": sums_re, "sums_im": sums_im,
            "kt": t,
        }

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def output(self, state: Mapping[str, Any]):
        """Scalar output: magnitude of every accumulated checksum."""
        sums_re, sums_im = state["sums_re"], state["sums_im"]
        weights = np.linspace(1.0, 2.0, self.params.niter)
        return ops.sum((ops.square(sums_re) + ops.square(sums_im)) * weights)

    def _reference_values(self) -> dict[str, np.ndarray]:
        if self._reference is None:
            final = concrete_state(self.run(self.initial_state(),
                                            self.total_steps))
            self._reference = {
                "sums_re": np.array(final["sums_re"], copy=True),
                "sums_im": np.array(final["sums_im"], copy=True),
            }
        return self._reference

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        reference = self._reference_values()
        final = concrete_state(state)
        details: dict[str, float] = {}
        passed = True
        for comp in ("sums_re", "sums_im"):
            got = np.asarray(final[comp], dtype=np.float64)
            ref = reference[comp]
            for t in range(ref.size):
                denom = abs(ref[t]) if ref[t] != 0.0 else 1.0
                rel = abs(got[t] - ref[t]) / denom
                details[f"{comp}[{t}]"] = float(rel)
                if not np.isfinite(rel) or rel > self.epsilon:
                    passed = False
        return VerificationResult(self.name, passed, self.epsilon, details)
