"""Common driver for the BT and SP structured-grid pseudo-applications.

BT (Block Tri-diagonal) and SP (Scalar Pentadiagonal) share their data
layout, their checkpoint variables (Table I: ``u[12][13][13][5]`` plus the
main-loop index) and their verification structure; they differ in the
implicit solver used between the shared ``compute_rhs`` / ``error_norm``
phases.  For the purposes of the checkpoint-criticality analysis what matters
is *which elements are read between a restart point and the verification
output*; this driver reproduces those access patterns with an explicit
relaxation solver whose per-iteration work mirrors the original structure:

1. a full-grid auxiliary sweep (``rho_i`` / ``qs`` / ``speed`` in the
   originals) that reads every component of ``u`` on ``[0:gp, 0:gp, 0:gp]``;
2. an interior right-hand-side evaluation (7-point stencil + nonlinear term
   + forcing);
3. an interior solution update;
4. at verification time, an ``error_norm`` over the full used sub-grid and a
   residual norm over the interior.

The padded slots at ``j == 12`` and ``i == 12`` are never touched by any of
these phases, which is exactly what makes them uncritical (Figure 3 of the
paper).

Subclasses (:class:`repro.npb.bt.BT`, :class:`repro.npb.sp.SP`) only supply
their constants.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import VerificationResult
from .pde_common import (exact_field, forcing_field, initial_field,
                         laplacian_interior)

__all__ = ["StructuredPDEBenchmark"]


class StructuredPDEBenchmark(NPBBenchmark):
    """Shared implementation of the BT/SP ports (see module docstring)."""

    #: name of the integer main-loop counter ("step" for BT and SP)
    step_name: str = "step"
    #: strength of the quadratic coupling term in the right-hand side
    nonlinear_coeff: float = 0.1
    #: verification tolerance (NPB uses 1e-8 for the pseudo-applications)
    epsilon: float = 1.0e-8

    def __init__(self, params) -> None:
        super().__init__(params)
        gp = params.grid_points
        self._exact = exact_field(params.u_shape, gp)
        self._forcing = forcing_field(params.u_shape, gp, self.nonlinear_coeff)
        self._reference: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        return (
            CheckpointVariable(
                name="u", shape=self.params.u_shape, kind=VariableKind.FLOAT,
                description="solution of the nonlinear PDE system"),
            CheckpointVariable(
                name=self.step_name, shape=(), kind=VariableKind.INTEGER,
                dtype=np.int64, critical_by_rule=True,
                description="main-loop index"),
        )

    # ------------------------------------------------------------------
    # state and dynamics
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        return {"u": initial_field(self.params.u_shape,
                                   self.params.grid_points),
                self.step_name: 0}

    def _auxiliary_sweep(self, u: Any) -> tuple[Any, Any]:
        """Full-grid auxiliary quantities (the rho_i / qs / speed sweep).

        Reads every component of ``u`` on the used sub-grid, like the first
        loop of the original ``compute_rhs``.
        """
        gp = self.params.grid_points
        block = u[0:gp, 0:gp, 0:gp, :]
        rho_inv = 1.0 / block[..., 0:1]
        qs = 0.5 * (ops.square(block[..., 1:2]) + ops.square(block[..., 2:3])
                    + ops.square(block[..., 3:4])) * rho_inv
        speed = ops.sqrt(ops.absolute(block[..., 4:5]) * rho_inv + 1.0)
        return qs, speed

    def _rhs_interior(self, u: Any, qs: Any) -> Any:
        """Interior right-hand side: stencil + nonlinear coupling + forcing."""
        gp = self.params.grid_points
        lap = laplacian_interior(u, gp)
        center = u[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        q_int = qs[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        nonlinear = self.nonlinear_coeff * center * (q_int - center)
        forcing = self._forcing[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        return lap + nonlinear + forcing

    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        gp = self.params.grid_points
        u = state["u"]
        qs, speed = self._auxiliary_sweep(u)
        rhs = self._rhs_interior(u, qs)
        damping = self._solver_damping(speed)
        update = self.params.dt * damping * rhs
        # functional update: keeps the derivative trace regardless of which
        # subset of the state is being watched by the analysis
        interior = (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1),
                    slice(None))
        u_new = ops.index_update(u, interior, u[interior] + update)
        return {"u": u_new,
                self.step_name: int(state[self.step_name]) + 1}

    def _solver_damping(self, speed: Any) -> Any:
        """Solver-specific interior damping factor built from ``speed``.

        The default (used by BT) is a block-style constant factor; SP
        overrides this with a speed-dependent scalar factor, mirroring the
        scalar-pentadiagonal character of its solver.
        """
        gp = self.params.grid_points
        del speed, gp
        return 1.0

    # ------------------------------------------------------------------
    # verification output
    # ------------------------------------------------------------------
    def _error_rms(self, u: Any):
        """Per-component RMS of ``u - exact`` over the full used sub-grid."""
        gp = self.params.grid_points
        diff = u[0:gp, 0:gp, 0:gp, :] - self._exact[0:gp, 0:gp, 0:gp, :]
        denom = float((gp - 2) ** 3)
        return ops.sqrt(ops.sum(ops.square(diff), axis=(0, 1, 2)) / denom)

    def _residual_rms(self, u: Any):
        """Per-component RMS of the interior right-hand side."""
        gp = self.params.grid_points
        qs, _speed = self._auxiliary_sweep(u)
        rhs = self._rhs_interior(u, qs)
        denom = float((gp - 2) ** 3)
        return ops.sqrt(ops.sum(ops.square(rhs), axis=(0, 1, 2)) / denom)

    def output(self, state: Mapping[str, Any]):
        """Scalar verification output: summed error and residual norms."""
        u = state["u"]
        return ops.sum(self._error_rms(u)) + ops.sum(self._residual_rms(u))

    def _reference_norms(self) -> dict[str, np.ndarray]:
        """Error/residual norms of a clean full run (cached)."""
        if self._reference is None:
            final = self.run(self.initial_state(), self.total_steps)
            u = concrete_state(final)["u"]
            self._reference = {
                "error_rms": np.asarray(ops.to_numpy(self._error_rms(u))),
                "residual_rms": np.asarray(ops.to_numpy(self._residual_rms(u))),
            }
        return self._reference

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        """NPB-style verification: compare final norms to the clean-run ones."""
        reference = self._reference_norms()
        u = np.asarray(concrete_state(state)["u"])
        error_rms = np.asarray(ops.to_numpy(self._error_rms(u)))
        residual_rms = np.asarray(ops.to_numpy(self._residual_rms(u)))
        details: dict[str, float] = {}
        passed = True
        for label, got, ref in (("error", error_rms, reference["error_rms"]),
                                ("residual", residual_rms,
                                 reference["residual_rms"])):
            for m in range(got.size):
                denom = abs(ref[m]) if ref[m] != 0.0 else 1.0
                rel = abs(got[m] - ref[m]) / denom
                details[f"{label}[{m}]"] = float(rel)
                if not np.isfinite(rel) or rel > self.epsilon:
                    passed = False
        return VerificationResult(self.name, passed, self.epsilon, details)
