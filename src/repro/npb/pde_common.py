"""Shared helpers for the structured-grid PDE ports (BT, SP, LU).

The three pseudo-application benchmarks share the same data layout -- a
solution array ``u[kmax][jmax][imax][5]`` padded to 13 in the j/i dimensions
while the solver only ever touches indices ``0 .. grid_points-1`` -- and the
same verification style (root-mean-square of the difference to a reference
"exact" field plus a residual norm).  This module provides:

* :func:`exact_field` -- the smooth per-component reference field standing in
  for the original ``exact_solution`` polynomial;
* :func:`initial_field` -- the initial solution, a *perturbed* version of the
  reference field.  The perturbation matters: in the original codes the
  boundary faces are initialised bit-identically to the value the error norm
  later compares against, which would make the first-order derivative of the
  error norm vanish at face points even though those values are read.  A
  smooth perturbation keeps every read element's derivative nonzero, which is
  the behaviour the paper's Figure 3 reports (see EXPERIMENTS.md);
* :func:`forcing_field` -- a forcing term that makes the reference field an
  approximate fixed point of the simple relaxation dynamics used by the
  ports, so long runs stay bounded;
* 7-point stencil helpers written against :mod:`repro.ad.ops` index ranges so
  they read exactly the element sets the analysis expects.

All helpers take the *used* grid extent ``gp`` (``grid_points``) explicitly;
the arrays themselves may be larger (the padding the paper's uncritical
elements live in).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ad import ops

__all__ = [
    "exact_field",
    "initial_field",
    "forcing_field",
    "laplacian_interior",
    "interior_slices",
    "PADDING_FILL",
]


#: value stored in the padded (never accessed) array slots at initialisation;
#: mirrors the "declared but not invoked" storage of the original codes
PADDING_FILL = 1.0

#: per-component coefficients of the smooth reference field (loosely playing
#: the role of the ``ce`` coefficient table of the original exact_solution)
_COEFFS = np.array([
    # c0,   cx,    cy,    cz,    cxy,   cyz,   czx,   cxyz
    [2.00, 0.30, -0.20, 0.40, 0.10, -0.05, 0.08, 0.02],
    [1.00, -0.10, 0.25, 0.15, -0.06, 0.09, 0.03, -0.01],
    [2.50, 0.20, 0.10, -0.30, 0.07, 0.04, -0.09, 0.03],
    [1.50, 0.15, -0.25, 0.20, -0.08, 0.06, 0.05, -0.02],
    [5.00, 0.40, 0.30, 0.35, 0.12, -0.10, 0.07, 0.04],
])


def _grid_coordinates(gp: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalised (zeta, eta, xi) coordinates of the used grid points."""
    axis = np.linspace(0.0, 1.0, gp)
    zeta = axis[:, None, None]
    eta = axis[None, :, None]
    xi = axis[None, None, :]
    return zeta, eta, xi


def exact_field(shape: tuple[int, int, int, int], gp: int) -> np.ndarray:
    """Reference ("exact") field on the used sub-grid, padding filled.

    Parameters
    ----------
    shape:
        Declared array shape ``(kmax, jmax, imax, ncomp)``.
    gp:
        Used extent per spatial dimension (``grid_points``).

    Returns
    -------
    numpy.ndarray
        Array of ``shape``; positions outside ``[0:gp, 0:gp, 0:gp]`` hold
        :data:`PADDING_FILL`.
    """
    kmax, jmax, imax, ncomp = shape
    if gp > min(kmax, jmax, imax):
        raise ValueError(f"grid_points={gp} exceeds declared dims {shape}")
    field = np.full(shape, PADDING_FILL, dtype=np.float64)
    zeta, eta, xi = _grid_coordinates(gp)
    for m in range(ncomp):
        c = _COEFFS[m % len(_COEFFS)]
        field[0:gp, 0:gp, 0:gp, m] = (
            c[0]
            + c[1] * xi + c[2] * eta + c[3] * zeta
            + c[4] * xi * eta + c[5] * eta * zeta + c[6] * zeta * xi
            + c[7] * xi * eta * zeta
        )
    return field


def initial_field(shape: tuple[int, int, int, int], gp: int,
                  perturbation: float = 0.02) -> np.ndarray:
    """Initial solution: the reference field with a smooth perturbation.

    The perturbation is a separable sine bump, zero nowhere on the used grid,
    so no element of the initial (or any later) state coincides exactly with
    the reference value the error norm subtracts.
    """
    field = exact_field(shape, gp)
    zeta, eta, xi = _grid_coordinates(gp)
    bump = (1.0 + perturbation
            * (1.0 + np.sin(2.1 * np.pi * xi + 0.3))
            * (1.0 + np.sin(1.7 * np.pi * eta + 0.5))
            * (1.0 + np.sin(1.3 * np.pi * zeta + 0.7)))
    field[0:gp, 0:gp, 0:gp, :] = field[0:gp, 0:gp, 0:gp, :] * bump[..., None]
    return field


def interior_slices(gp: int) -> tuple[slice, slice, slice]:
    """Slices of the interior points ``1 .. gp-2`` in each spatial dim."""
    inner = slice(1, gp - 1)
    return inner, inner, inner


def laplacian_interior(u: Any, gp: int) -> Any:
    """Standard 7-point Laplacian of ``u`` evaluated on the interior.

    ``u`` has shape ``(kmax, jmax, imax, ncomp)`` (traced or plain); only
    indices ``0 .. gp-1`` are ever read, which is what confines the critical
    region of the BT/SP/LU solution arrays to the used sub-grid.
    """
    center = u[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
    kp = u[2:gp, 1:gp - 1, 1:gp - 1, :]
    km = u[0:gp - 2, 1:gp - 1, 1:gp - 1, :]
    jp = u[1:gp - 1, 2:gp, 1:gp - 1, :]
    jm = u[1:gp - 1, 0:gp - 2, 1:gp - 1, :]
    ip = u[1:gp - 1, 1:gp - 1, 2:gp, :]
    im = u[1:gp - 1, 1:gp - 1, 0:gp - 2, :]
    return kp + km + jp + jm + ip + im - 6.0 * center


def forcing_field(shape: tuple[int, int, int, int], gp: int,
                  nonlinear_coeff: float) -> np.ndarray:
    """Forcing that makes the reference field a fixed point of the dynamics.

    The ports advance the interior with
    ``u += tau * (laplacian(u) + nl * u * (q - u) + forcing)`` for a smooth
    auxiliary field ``q``; choosing ``forcing`` as minus the right-hand side
    evaluated at the reference field keeps long runs bounded and drives the
    error norm towards (but never exactly to) zero.
    """
    exact = exact_field(shape, gp)
    lap = laplacian_interior(exact, gp)
    q = 0.5 * (exact[1:gp - 1, 1:gp - 1, 1:gp - 1, 1:2] ** 2
               + exact[1:gp - 1, 1:gp - 1, 1:gp - 1, 2:3] ** 2)
    nl = nonlinear_coeff * exact[1:gp - 1, 1:gp - 1, 1:gp - 1, :] * (
        q - exact[1:gp - 1, 1:gp - 1, 1:gp - 1, :])
    forcing = np.zeros(shape, dtype=np.float64)
    forcing[1:gp - 1, 1:gp - 1, 1:gp - 1, :] = -(lap + nl)
    return forcing
