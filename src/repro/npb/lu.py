"""LU -- Lower-Upper symmetric Gauss-Seidel pseudo-application port.

Checkpoint variables (paper Table I, class S)::

    double u[12][13][13][5]
    double rho_i[12][13][13]
    double qs[12][13][13]
    double rsd[12][13][13][5]
    int    istep

The paper's findings this port reproduces (Table II, Figures 3 and 7):

* ``rho_i`` and ``qs``: 300 of 2028 elements uncritical -- the padded
  ``j == 12`` / ``i == 12`` planes (the SSOR sweep consumes the full
  ``[0:12, 0:12, 0:12]`` block).
* ``rsd``: 1500 of 10140 uncritical -- same planes for all five components.
* ``u``: 1628 of 10140 uncritical.  Components 0-3 follow the Figure 3
  pattern (they are read on the full used sub-grid when ``rho_i``/``qs`` are
  recomputed at the end of each iteration), while component 4 (total energy)
  is only read by the three directional energy-flux ranges
  ``u[1:11][1:11][0:12][4]``, ``u[1:11][0:12][1:11][4]`` and
  ``u[0:12][1:11][1:11][4]`` and is therefore uncritical on an additional 128
  edge elements (Figure 7).

Per-iteration structure mirroring the original ``ssor`` loop:

1. lower/upper triangular sweeps that consume ``rsd`` scaled by a diagonal
   factor built from ``rho_i`` and ``qs`` (so every element of the three
   arrays on the used sub-grid influences the interior update);
2. directional energy-flux differences reading ``u[..., 4]`` on the three box
   ranges;
3. interior update of ``u``;
4. end-of-iteration recomputation of ``rho_i``, ``qs`` (full used sub-grid,
   reading ``u`` components 0-3 everywhere) and of ``rsd`` (interior
   residual);
5. the verification output combines interior error norms, the residual norm
   and a flux-consistency term built from the recomputed auxiliary fields.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad import ops
from repro.core.variables import CheckpointVariable, VariableKind

from .base import NPBBenchmark, concrete_state
from .common import VerificationResult
from .params import LUParams, params_for
from .pde_common import (PADDING_FILL, exact_field, forcing_field,
                         initial_field, laplacian_interior)

__all__ = ["LU"]


class LU(NPBBenchmark):
    """Lower-Upper symmetric Gauss-Seidel solver surrogate."""

    name = "LU"
    #: verification tolerance (NPB uses 1e-8 for LU)
    epsilon = 1.0e-8
    #: strength of the quadratic coupling in the residual
    nonlinear_coeff = 0.08
    #: explicit relaxation factor applied to the interior residual update
    #: (kept well inside the stability limit of the 7-point stencil)
    relaxation = 0.05
    #: coupling constants of the sweep and energy-flux contributions; small
    #: enough to keep the explicit iteration stable, nonzero so every element
    #: they touch influences the output
    sweep_coupling = 2.0e-3
    energy_coupling = 1.0e-3
    #: geometric decay of the triangular substitution factors
    sweep_decay = 0.35

    def __init__(self, params: LUParams | None = None,
                 problem_class: str = "S") -> None:
        super().__init__(params or params_for("LU", problem_class))
        p = self.params
        self._exact = exact_field(p.u_shape, p.grid_points)
        self._forcing = forcing_field(p.u_shape, p.grid_points,
                                      self.nonlinear_coeff)
        self._lower = self._triangular_factor(lower=True)
        self._upper = self._triangular_factor(lower=False)
        self._reference: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        p = self.params
        return (
            CheckpointVariable("u", p.u_shape, VariableKind.FLOAT,
                               description="solution of the nonlinear PDE "
                                           "system"),
            CheckpointVariable("rho_i", p.scalar_field_shape,
                               VariableKind.FLOAT,
                               description="reciprocal density used by the "
                                           "SSOR relaxation"),
            CheckpointVariable("qs", p.scalar_field_shape, VariableKind.FLOAT,
                               description="dynamic-pressure field used for "
                                           "the flux differences"),
            CheckpointVariable("rsd", p.u_shape, VariableKind.FLOAT,
                               description="steady-state residual"),
            CheckpointVariable("istep", (), VariableKind.INTEGER,
                               dtype=np.int64, critical_by_rule=True,
                               description="main-loop index"),
        )

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[str, Any]:
        u = initial_field(self.params.u_shape, self.params.grid_points)
        rho_i, qs = self._auxiliary_fields(u)
        rsd = self._residual(u)
        return {"u": u, "rho_i": rho_i, "qs": qs, "rsd": rsd, "istep": 0}

    def _triangular_factor(self, lower: bool) -> np.ndarray:
        """Decaying triangular substitution matrix for one sweep direction."""
        gp = self.params.grid_points
        idx = np.arange(gp)
        lag = idx[:, None] - idx[None, :]
        if not lower:
            lag = -lag
        factor = np.where(lag >= 0, self.sweep_decay ** lag, 0.0)
        return factor

    # ------------------------------------------------------------------
    # physics pieces
    # ------------------------------------------------------------------
    def _auxiliary_fields(self, u: Any) -> tuple[Any, Any]:
        """Recompute ``rho_i`` and ``qs`` from ``u`` (full used sub-grid).

        Mirrors the first loop of the original ``rhs``: reads components 0-3
        of ``u`` on ``[0:gp, 0:gp, 0:gp]`` and writes full declared-size
        fields whose padding keeps its initialisation value.
        """
        gp = self.params.grid_points
        block = u[0:gp, 0:gp, 0:gp, :]
        rho_inv = 1.0 / block[..., 0]
        q = 0.5 * (ops.square(block[..., 1]) + ops.square(block[..., 2])
                   + ops.square(block[..., 3])) * rho_inv
        rho_full = ops.index_update(
            np.full(self.params.scalar_field_shape, PADDING_FILL),
            (slice(0, gp), slice(0, gp), slice(0, gp)), rho_inv)
        qs_full = ops.index_update(
            np.full(self.params.scalar_field_shape, PADDING_FILL),
            (slice(0, gp), slice(0, gp), slice(0, gp)), q)
        return rho_full, qs_full

    def _residual(self, u: Any) -> Any:
        """Interior residual ``rsd`` of the relaxation dynamics."""
        gp = self.params.grid_points
        lap = laplacian_interior(u, gp)
        center = u[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        q_int = 0.5 * (ops.square(u[1:gp - 1, 1:gp - 1, 1:gp - 1, 1:2])
                       + ops.square(u[1:gp - 1, 1:gp - 1, 1:gp - 1, 2:3]))
        nonlinear = self.nonlinear_coeff * center * (q_int - center)
        forcing = self._forcing[1:gp - 1, 1:gp - 1, 1:gp - 1, :]
        interior = lap + nonlinear + forcing
        rsd = ops.index_update(
            np.full(self.params.u_shape, PADDING_FILL),
            (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1),
             slice(None)), interior)
        return rsd

    def _sweep(self, rsd: Any, rho_i: Any, qs: Any) -> Any:
        """Lower/upper triangular substitution surrogate.

        Consumes ``rsd`` scaled by a diagonal factor built from ``rho_i`` and
        ``qs`` over the full used sub-grid, then propagates along the three
        grid directions with decaying triangular factors (forward along k,
        backward along j, forward along i), so *every* consumed element --
        boundary corners included -- influences the interior update, exactly
        like the original forward/backward substitutions.
        """
        gp = self.params.grid_points
        block = rsd[0:gp, 0:gp, 0:gp, :]
        diag = 1.0 / (1.0 + 0.2 * rho_i[0:gp, 0:gp, 0:gp]
                      + 0.1 * qs[0:gp, 0:gp, 0:gp])
        d = block * ops.expand_dims(diag, -1)
        # forward (lower-triangular) followed by backward (upper-triangular)
        # substitution along every grid direction, as in the original SSOR;
        # the composition is a dense positive coupling, so every consumed
        # element -- boundary corners included -- reaches the interior update.
        for axis in range(3):
            d = self._apply_along_axis(self._lower, d, axis=axis)
            d = self._apply_along_axis(self._upper, d, axis=axis)
        return d

    def _apply_along_axis(self, matrix: np.ndarray, field: Any,
                          axis: int) -> Any:
        """Apply a (gp, gp) coupling matrix along one spatial axis of a
        (gp, gp, gp, ncomp) field."""
        gp = self.params.grid_points
        ncomp = self.params.ncomp
        moved = ops.moveaxis(field, axis, 0)
        flat = ops.reshape(moved, (gp, gp * gp * ncomp))
        mixed = ops.matmul(matrix, flat)
        restored = ops.reshape(mixed, (gp, gp, gp, ncomp))
        return ops.moveaxis(restored, 0, axis)

    def _energy_flux(self, u: Any) -> Any:
        """Directional energy-flux differences reading ``u[..., 4]`` on the
        three box ranges of Figure 7."""
        gp = self.params.grid_points
        flux_i = u[1:gp - 1, 1:gp - 1, 0:gp, 4]
        flux_j = u[1:gp - 1, 0:gp, 1:gp - 1, 4]
        flux_k = u[0:gp, 1:gp - 1, 1:gp - 1, 4]
        d_i = flux_i[:, :, 2:gp] - flux_i[:, :, 0:gp - 2]
        d_j = flux_j[:, 2:gp, :] - flux_j[:, 0:gp - 2, :]
        d_k = flux_k[2:gp, :, :] - flux_k[0:gp - 2, :, :]
        return d_i + d_j + d_k

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        p = self.params
        gp = p.grid_points
        u, rsd = state["u"], state["rsd"]
        rho_i, qs = state["rho_i"], state["qs"]

        # 1.-2. SSOR sweeps and energy-flux differences
        d = self._sweep(rsd, rho_i, qs)
        ener = self._energy_flux(u)

        # 3. interior update of u (the "add" phase)
        interior = (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1),
                    slice(None))
        update = (self.relaxation * self._residual(u)[interior]
                  + p.omega * self.sweep_coupling * d[1:gp - 1, 1:gp - 1,
                                                      1:gp - 1, :])
        # functional updates keep the derivative trace regardless of which
        # subset of the state is being watched by the analysis
        u_new = ops.index_update(u, interior, u[interior] + update)
        # energy component receives the flux coupling on top
        energy_slot = (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1), 4)
        u_new = ops.index_update(u_new, energy_slot,
                                 u_new[energy_slot]
                                 + self.energy_coupling * ener)

        # 4. recompute the auxiliary fields and the residual from the new u
        rho_new, qs_new = self._auxiliary_fields(u_new)
        rsd_new = self._residual(u_new)

        return {"u": u_new, "rho_i": rho_new, "qs": qs_new, "rsd": rsd_new,
                "istep": int(state["istep"]) + 1}

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _error_rms_interior(self, u: Any):
        """Per-component RMS of ``u - exact`` over the interior (the original
        LU ``error`` routine only visits interior points)."""
        gp = self.params.grid_points
        interior = (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1),
                    slice(None))
        diff = u[interior] - self._exact[interior]
        denom = float((gp - 2) ** 3)
        return ops.sqrt(ops.sum(ops.square(diff), axis=(0, 1, 2)) / denom)

    def _rsd_rms(self, rsd: Any):
        """Per-component RMS of the interior residual."""
        gp = self.params.grid_points
        interior = (slice(1, gp - 1), slice(1, gp - 1), slice(1, gp - 1),
                    slice(None))
        denom = float((gp - 2) ** 3)
        return ops.sqrt(ops.sum(ops.square(rsd[interior]), axis=(0, 1, 2))
                        / denom)

    def _flux_consistency(self, rho_i: Any, qs: Any):
        """Mean of the recomputed auxiliary fields over the used sub-grid
        (plays the role of the original surface-integral check)."""
        gp = self.params.grid_points
        block = (slice(0, gp), slice(0, gp), slice(0, gp))
        return ops.mean(rho_i[block]) + ops.mean(qs[block])

    def output(self, state: Mapping[str, Any]):
        u = state["u"]
        rho_i, qs = self._auxiliary_fields(u)
        rsd = self._residual(u)
        return (ops.sum(self._error_rms_interior(u))
                + ops.sum(self._rsd_rms(rsd))
                + 0.01 * self._flux_consistency(rho_i, qs))

    def _reference_values(self) -> dict[str, np.ndarray]:
        if self._reference is None:
            final = concrete_state(self.run(self.initial_state(),
                                            self.total_steps))
            u = final["u"]
            rho_i, qs = self._auxiliary_fields(u)
            self._reference = {
                "error_rms": np.asarray(ops.to_numpy(
                    self._error_rms_interior(u))),
                "rsd_rms": np.asarray(ops.to_numpy(
                    self._rsd_rms(self._residual(u)))),
                "flux": np.asarray(ops.to_numpy(
                    self._flux_consistency(rho_i, qs))),
            }
        return self._reference

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        reference = self._reference_values()
        final = concrete_state(state)
        u = final["u"]
        rho_i, qs = self._auxiliary_fields(u)
        got = {
            "error_rms": np.asarray(ops.to_numpy(self._error_rms_interior(u))),
            "rsd_rms": np.asarray(ops.to_numpy(
                self._rsd_rms(self._residual(u)))),
            "flux": np.asarray(ops.to_numpy(
                self._flux_consistency(rho_i, qs))),
        }
        details: dict[str, float] = {}
        passed = True
        for key, ref in reference.items():
            ref_arr = np.atleast_1d(ref)
            got_arr = np.atleast_1d(got[key])
            for m in range(ref_arr.size):
                denom = abs(ref_arr[m]) if ref_arr[m] != 0.0 else 1.0
                rel = abs(got_arr[m] - ref_arr[m]) / denom
                details[f"{key}[{m}]"] = float(rel)
                if not np.isfinite(rel) or rel > self.epsilon:
                    passed = False
        return VerificationResult(self.name, passed, self.epsilon, details)
