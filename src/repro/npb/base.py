"""Common base class for the NPB mini-app ports.

Every benchmark port derives from :class:`NPBBenchmark` and implements four
hooks (:meth:`NPBBenchmark.checkpoint_variables`,
:meth:`NPBBenchmark.initial_state`, :meth:`NPBBenchmark._advance`,
:meth:`NPBBenchmark.output`).  The base class provides the capabilities the
rest of the reproduction consumes:

* running the main loop either on plain NumPy arrays (fast path) or on
  traced :class:`~repro.ad.tensor.ADArray` state (AD path) -- the kernels
  are written once against :mod:`repro.ad.ops`, which dispatches on the
  argument types;
* producing the state at a checkpoint step (:meth:`checkpoint_state`);
* running the *remaining* computation from an arbitrary state and reducing
  it to the scalar verification output (:meth:`restart_output`) -- this is
  the function whose derivative with respect to every checkpoint-variable
  element the paper computes;
* the benchmark's own verification phase (:meth:`verify`), which the
  restart-correctness experiments of Section IV-C rely on.

State is always carried in a plain ``dict`` mapping variable component names
to arrays/scalars, so checkpoint files, failure injection and AD tracing all
operate on the same representation.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.ad.schedule import snapshot_state
from repro.ad.tape import Tape
from repro.ad.tensor import ADArray, value_of
from repro.core.variables import (CheckpointVariable, VariableKind,
                                  validate_state)

from .common import VerificationResult

__all__ = ["NPBBenchmark", "concrete_state", "copy_state"]


def concrete_state(state: Mapping[str, Any]) -> dict[str, Any]:
    """Strip any AD wrappers from a state dict, returning plain numpy data.

    Delegates to :func:`repro.ad.schedule.snapshot_state`, the single
    implementation of "deep-copied, wrapper-free state dict".
    """
    return snapshot_state(state)


def copy_state(state: Mapping[str, Any]) -> dict[str, Any]:
    """Deep copy of a concrete state dict (arrays copied, scalars passed)."""
    return concrete_state(state)


class NPBBenchmark:
    """Base class of all NPB ports.

    Parameters
    ----------
    params:
        The parameter dataclass from :mod:`repro.npb.params` describing the
        problem class to run.
    """

    #: short benchmark name, overridden by subclasses ("BT", "MG", ...)
    name: str = "base"

    def __init__(self, params) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # hooks implemented by subclasses
    # ------------------------------------------------------------------
    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        """Variables necessary for checkpointing (the paper's Table I)."""
        raise NotImplementedError

    def initial_state(self) -> dict[str, Any]:
        """State dict at step 0, before the first main-loop iteration."""
        raise NotImplementedError

    def _advance(self, state: dict[str, Any]) -> dict[str, Any]:
        """Advance the state by exactly one main-loop iteration.

        Implementations must be written against :mod:`repro.ad.ops` (or plain
        operators on the state values) so they work identically for numpy and
        traced states, and must treat ``state`` as read-only, returning a new
        dict.
        """
        raise NotImplementedError

    def output(self, state: Mapping[str, Any]):
        """Scalar verification output (differentiable for traced states)."""
        raise NotImplementedError

    def verify(self, state: Mapping[str, Any]) -> VerificationResult:
        """Benchmark verification phase on a concrete final state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # main-loop drivers provided by the base class
    # ------------------------------------------------------------------
    @property
    def total_steps(self) -> int:
        """Number of main-loop iterations of the configured problem class."""
        return int(self.params.niter)

    def step_variable(self) -> str | None:
        """Name of the integer main-loop index variable, if any."""
        for var in self.checkpoint_variables():
            if var.kind is VariableKind.INTEGER and var.is_scalar:
                return var.name
        return None

    def run(self, state: Mapping[str, Any], steps: int) -> dict[str, Any]:
        """Advance ``state`` by ``steps`` iterations (new dict returned)."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        current = dict(state)
        for _ in range(steps):
            current = self._advance(current)
        return current

    def run_full(self) -> dict[str, Any]:
        """Run the benchmark start to finish on plain numpy state."""
        return self.run(self.initial_state(), self.total_steps)

    def checkpoint_state(self, step: int) -> dict[str, Any]:
        """Concrete state after ``step`` main-loop iterations.

        This is the state a checkpoint taken at that point would capture; it
        is also the base point of the AD analysis.
        """
        if not 0 <= step <= self.total_steps:
            raise ValueError(
                f"checkpoint step {step} outside [0, {self.total_steps}]")
        state = self.run(self.initial_state(), step)
        concrete = concrete_state(state)
        validate_state(self.checkpoint_variables(), concrete)
        return concrete

    def remaining_steps(self, step: int) -> int:
        """Iterations left after a checkpoint at ``step``."""
        return self.total_steps - step

    def restart_output(self, state: Mapping[str, Any],
                       steps: int | None = None):
        """Run the remaining computation from ``state`` and return the output.

        ``steps`` defaults to all remaining iterations implied by the state's
        step counter when present, falling back to one iteration.  This is
        the function ``f`` of the paper: criticality of an element ``e`` of a
        checkpoint variable is ``d f / d e != 0``.
        """
        current = dict(state)
        if steps is None:
            steps = self._default_remaining_steps(current)
        current = self.run(current, steps)
        return self.output(current)

    def _default_remaining_steps(self, state: Mapping[str, Any]) -> int:
        step_name = self.step_variable()
        if step_name is not None and step_name in state:
            done = int(value_of(state[step_name]))
            return max(self.total_steps - done, 0)
        return 1

    def run_and_verify(self) -> VerificationResult:
        """Full run followed by the verification phase."""
        return self.verify(self.run_full())

    # ------------------------------------------------------------------
    # AD entry point
    # ------------------------------------------------------------------
    def traced_restart(self, state: Mapping[str, Any],
                       watch: Sequence[str] | None = None,
                       steps: int | None = None):
        """Trace the restart computation and return ``(tape, leaves, output)``.

        Parameters
        ----------
        state:
            Concrete checkpoint state (plain numpy arrays / scalars).
        watch:
            State-dict keys to watch (defaults to every floating point
            component of every checkpoint variable).  Integer variables are
            never watched -- the criticality rules handle them.
        steps:
            Number of remaining iterations to trace; ``None`` means all
            remaining iterations per the state's step counter.

        Returns
        -------
        tape:
            The recorded :class:`~repro.ad.tape.Tape`.
        leaves:
            Mapping from watched state key to its traced leaf ``ADArray``.
        output:
            The traced scalar output.
        """
        state = concrete_state(state)
        traced_state, leaves, tape = self._watched_trace_state(state, watch)
        with tape:
            out = self.restart_output(traced_state, steps=steps)
        return tape, leaves, out

    def default_watch_keys(self) -> list[str]:
        """State keys watched by default: every floating point component."""
        watch: list[str] = []
        for var in self.checkpoint_variables():
            if var.kind is VariableKind.INTEGER:
                continue
            watch.extend(var.state_keys())
        return watch

    def _watched_trace_state(self, state: Mapping[str, Any],
                             watch: Sequence[str] | None
                             ) -> tuple[dict[str, Any], dict[str, ADArray],
                                        Tape]:
        """Fresh tape plus a state dict whose ``watch`` entries are leaves."""
        if watch is None:
            watch = self.default_watch_keys()
        traced_state: dict[str, Any] = dict(state)
        leaves: dict[str, ADArray] = {}
        tape = Tape()
        with tape:
            for key in watch:
                if key not in state:
                    raise KeyError(f"cannot watch unknown state entry {key!r}")
                leaves[key] = tape.watch(state[key], name=key)
                traced_state[key] = leaves[key]
        return traced_state, leaves, tape

    def traced_step(self, state: Mapping[str, Any],
                    watch: Sequence[str] | None = None):
        """Trace exactly **one** main-loop iteration from ``state``.

        This is the per-segment building block of the segmented reverse
        sweep (:mod:`repro.ad.segmented`): the returned tape records only a
        single iteration's primitives, so its memory footprint is O(1
        iteration) regardless of how many iterations remain.

        Returns
        -------
        tape:
            The recorded :class:`~repro.ad.tape.Tape` of the one iteration.
        leaves:
            Mapping from watched state key to its traced leaf ``ADArray``.
        next_state:
            The state dict after the iteration; watched entries that depend
            on the inputs are traced ``ADArray`` values on ``tape``.
        """
        state = concrete_state(state)
        traced_state, leaves, tape = self._watched_trace_state(state, watch)
        with tape:
            next_state = self._advance(traced_state)
        return tape, leaves, next_state

    def traced_output(self, state: Mapping[str, Any],
                      watch: Sequence[str] | None = None):
        """Trace only the output (verification) reduction from ``state``.

        The final segment of the segmented reverse sweep: no main-loop
        iteration is traced, just the reduction of ``state`` to the scalar
        verification output.  Returns ``(tape, leaves, output)``.
        """
        state = concrete_state(state)
        traced_state, leaves, tape = self._watched_trace_state(state, watch)
        with tape:
            out = self.output(traced_state)
        return tape, leaves, out

    def plan_structure_token(self, state: Mapping[str, Any]):
        """Discriminator for state-dependent traced structure (plan cache).

        The replay-plan cache (:mod:`repro.ad.plan`) keys compiled step
        plans by state *shape* and, when needed, by the exact non-float
        state values; a benchmark whose traced op sequence additionally
        depends on something neither tier can see -- a branch on a traced
        float's value, a mode flag stored outside the state dict -- must
        return the discriminating value here so structurally different
        steps never share a plan.  ``None`` (the default, correct for all
        NPB ports) adds nothing to the key.
        """
        return None

    # ------------------------------------------------------------------
    # batched multi-probe AD entry points (see repro.ad.probes)
    # ------------------------------------------------------------------
    def traced_restart_probes(self, states: Sequence[Mapping[str, Any]],
                              watch: Sequence[str] | None = None,
                              steps: int | None = None):
        """Trace the restart computation of several probe states at once.

        The watched entries of every state in ``states`` are stacked along a
        leading probe axis and traced in **one** forward run under the
        probe-batched semantics of :mod:`repro.ad.ops`; unwatched entries
        are shared from ``states[0]`` (exactly what the per-probe path
        does, since probing only perturbs watched keys).  Returns ``(tape,
        leaves, output)`` where every leaf and the output carry the probe
        axis.
        """
        from repro.ad.probes import probe_axis, stack_states

        states = [concrete_state(s) for s in states]
        if watch is None:
            watch = self.default_watch_keys()
        stacked = stack_states(states, list(watch))
        traced_state, leaves, tape = self._watched_trace_state(stacked, watch)
        with tape, probe_axis(len(states)):
            out = self.restart_output(traced_state, steps=steps)
        return tape, leaves, out

    def traced_step_probes(self, stacked_state: Mapping[str, Any],
                           n_probes: int,
                           watch: Sequence[str] | None = None):
        """Trace one iteration of an already-stacked probe state.

        ``stacked_state`` carries ``(n_probes,) + shape`` arrays for every
        watched entry (see :func:`repro.ad.probes.stack_states`); this is
        the per-segment building block of the batched segmented sweep.
        Returns ``(tape, leaves, next_state)`` exactly like
        :meth:`traced_step`, with the probe axis threaded through.
        """
        from repro.ad.probes import probe_axis

        state = concrete_state(stacked_state)
        traced_state, leaves, tape = self._watched_trace_state(state, watch)
        with tape, probe_axis(n_probes):
            next_state = self._advance(traced_state)
        return tape, leaves, next_state

    def traced_output_probes(self, stacked_state: Mapping[str, Any],
                             n_probes: int,
                             watch: Sequence[str] | None = None):
        """Trace only the output reduction of an already-stacked probe state.

        Batched counterpart of :meth:`traced_output`; the traced output is a
        ``(n_probes,)`` array holding every probe's scalar verification
        value.
        """
        from repro.ad.probes import probe_axis

        state = concrete_state(stacked_state)
        traced_state, leaves, tape = self._watched_trace_state(state, watch)
        with tape, probe_axis(n_probes):
            out = self.output(traced_state)
        return tape, leaves, out

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable description of the benchmark and its variables."""
        lines = [f"{self.name} (class {self.params.problem_class}), "
                 f"{self.total_steps} main-loop iterations"]
        for var in self.checkpoint_variables():
            lines.append(f"  {var}  -- {var.description}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(class={self.params.problem_class!r})"
