"""Table II -- number of uncritical elements per checkpoint variable.

Runs the AD criticality analysis on every benchmark the paper evaluates and
compares the per-variable uncritical counts and rates against the paper's
Table II (see :mod:`repro.experiments.paper` for the expected values and the
note on the paper's permuted LU rows).
"""

from __future__ import annotations

from repro.core.report import format_table, uncritical_rows

from .paper import TABLE2_BENCHMARKS, TABLE2_EXPECTED
from .runner import ExperimentReport, ExperimentRunner

__all__ = ["run"]


def run(runner: ExperimentRunner | None = None,
        benchmarks: tuple[str, ...] = TABLE2_BENCHMARKS) -> ExperimentReport:
    """Regenerate Table II and compare against the paper."""
    runner = runner or ExperimentRunner()
    criticality = runner.criticality(benchmarks)
    rows = uncritical_rows(criticality)

    comparisons: list[dict] = []
    mismatches: list[str] = []
    for row in rows:
        expected = TABLE2_EXPECTED.get((row.benchmark, row.variable))
        entry = {
            "benchmark": row.benchmark,
            "variable": row.variable,
            "uncritical": row.uncritical,
            "total": row.total,
            "uncritical_rate": row.uncritical_rate,
            "paper_uncritical": expected[0] if expected else None,
            "paper_total": expected[1] if expected else None,
        }
        comparisons.append(entry)
        if expected is not None and (row.uncritical, row.total) != expected:
            mismatches.append(
                f"{row.label}: measured {row.uncritical}/{row.total}, "
                f"paper reports {expected[0]}/{expected[1]}")
    measured_keys = {(row.benchmark, row.variable) for row in rows}
    for key, expected in TABLE2_EXPECTED.items():
        if key[0] in {b.upper() for b in benchmarks} \
                and key not in measured_keys:
            mismatches.append(f"{key[0]}({key[1]}): paper reports "
                              f"{expected[0]}/{expected[1]} but this "
                              f"reproduction found no uncritical elements")

    cells = []
    for entry in comparisons:
        paper = "-" if entry["paper_uncritical"] is None \
            else str(entry["paper_uncritical"])
        cells.append((f"{entry['benchmark']}({entry['variable']})",
                      str(entry["uncritical"]), str(entry["total"]),
                      f"{100.0 * entry['uncritical_rate']:.1f}%", paper))
    text = format_table(
        ["Benchmark(variable)", "Uncritical", "Total", "Uncritical rate",
         "Paper uncritical"],
        cells, title="Table II: number of uncritical elements")
    if mismatches:
        text += "\n\ndeviations from the paper:\n" + "\n".join(
            f"  {m}" for m in mismatches)
    else:
        text += "\n\nevery row matches the paper's Table II exactly"

    return ExperimentReport(
        name="table2",
        text=text,
        data={"rows": comparisons, "mismatches": mismatches},
        matches_paper=not mismatches,
    )
