"""Section IV-C -- verifying the AD results by restarting from pruned
checkpoints.

For every benchmark the harness:

1. runs the main loop with periodic *pruned* checkpoints (only critical
   elements written, regions in the auxiliary file);
2. injects a failure part-way through the run;
3. rebuilds the restart state from a fresh initial state whose *uncritical*
   elements are overwritten with garbage (they were not checkpointed, so
   after a real failure they hold whatever the allocator left there);
4. restores the latest pruned checkpoint, finishes the run and lets the
   benchmark's own verification phase judge the result.

The paper's claim is that every benchmark passes.  A negative control is
included: re-corrupting the *critical* elements after the restore (modelling
a checkpoint that failed to bring them back) must make the verification
fail -- evidence that the elements the analysis kept really are critical.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.ckpt.failure import run_failure_scenario
from repro.core.report import format_table

from .paper import VERIFY_BENCHMARKS
from .runner import ExperimentReport, ExperimentRunner

__all__ = ["run"]


def run(runner: ExperimentRunner | None = None,
        benchmarks: tuple[str, ...] = VERIFY_BENCHMARKS,
        directory: str | Path | None = None,
        include_negative_control: bool = True,
        interval: int | None = None) -> ExperimentReport:
    """Run the restart-correctness experiment for every benchmark.

    Parameters
    ----------
    runner:
        Shared experiment runner (its problem class decides run sizes; the
        paper uses class S).
    benchmarks:
        Benchmarks to cover; defaults to the full 8-benchmark suite.
    directory:
        Where checkpoint files are written (a temporary directory by
        default).
    include_negative_control:
        Also run the corrupted-critical-elements scenario on the first
        benchmark and require it to fail.
    interval:
        Checkpoint interval in main-loop iterations; defaults to roughly a
        quarter of each benchmark's run so a checkpoint exists before the
        failure.
    """
    runner = runner or ExperimentRunner()
    # batch the underlying analyses so a parallel runner fans them out once
    runner.prefetch(benchmarks)
    workdir = Path(directory) if directory is not None \
        else Path(tempfile.mkdtemp(prefix="repro_verify_"))

    rows = []
    records = []
    all_passed = True
    for name in benchmarks:
        bench = runner.benchmark(name)
        result = runner.result(name)
        bench_interval = interval or max(bench.total_steps // 4, 1)
        scenario = run_failure_scenario(
            bench, workdir / name.lower(), result.variables,
            interval=bench_interval, mode="pruned", corrupt="uncritical")
        records.append(scenario)
        all_passed &= scenario.verification_passed
        rows.append((name, str(scenario.fail_step),
                     str(scenario.restart_step),
                     str(result.n_uncritical),
                     "PASSED" if scenario.verification_passed else "FAILED"))

    negative = None
    if include_negative_control and benchmarks:
        name = benchmarks[0]
        bench = runner.benchmark(name)
        result = runner.result(name)
        negative = run_failure_scenario(
            bench, workdir / f"{name.lower()}_negative", result.variables,
            interval=interval or max(bench.total_steps // 4, 1),
            mode="pruned", corrupt="uncritical", unrecovered="critical")
        rows.append((f"{name} (negative control)",
                     str(negative.fail_step), str(negative.restart_step),
                     "critical dropped",
                     "FAILED as expected" if not negative.verification_passed
                     else "PASSED (unexpected)"))
        all_passed &= not negative.verification_passed

    text = format_table(
        ["Benchmark", "Failure step", "Restart step",
         "Elements not checkpointed", "Verification"],
        rows, title="Section IV-C: restart verification with pruned "
                    "checkpoints")
    text += ("\n\nall benchmarks restarted successfully and passed their "
             "verification" if all_passed else
             "\n\nsome scenario did not behave as the paper reports")

    return ExperimentReport(
        name="verify",
        text=text,
        data={"scenarios": records, "negative_control": negative},
        matches_paper=all_passed,
    )
