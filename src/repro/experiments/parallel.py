"""Parallel scrutiny engine.

The per-benchmark (and per-method) analyses are embarrassingly parallel:
each job instantiates its own benchmark port, runs it to the checkpoint
step and performs the AD sweep with no shared mutable state.  This module
fans such jobs out across a process pool and merges the results back
deterministically:

* :class:`ScrutinyJob` -- a picklable, hashable description of one analysis
  (benchmark, problem class, method, n_probes, step, steps);
* :func:`run_job` -- the module-level (hence spawn-safe) worker function;
* :class:`ParallelRunner` -- schedules jobs over an optional
  :class:`~repro.core.store.ResultStore` (cache first, pool second),
  deduplicates identical jobs, preserves input order in the output, and
  falls back to in-process execution when ``workers == 1``, when only one
  job is left after cache hits, or when the platform cannot deliver a
  working pool.

Fault tolerance (:mod:`repro.experiments.faults`): each job attempt is
guarded by a wall-clock watchdog (``FaultPolicy.timeout``) and bounded
retries with deterministic exponential backoff; a dead worker
(:class:`~concurrent.futures.process.BrokenProcessPool`) respawns the pool
and re-queues only the unfinished jobs -- results harvested before the
collapse are kept and persisted -- and a job that keeps failing is
quarantined as *poisoned* after ``max_retries`` so the rest of the batch
completes.  Completions stream into the result store and an optional
:class:`~repro.experiments.faults.BatchJournal` as they arrive, which is
what makes a killed batch resumable: the re-invoked run serves finished
jobs from the store and re-executes none of them.

Determinism: every job builds its own fixed-seed probe generator inside
:func:`~repro.core.analysis.scrutinize` (``rng=None``), so the masks are
bitwise-identical no matter how jobs are distributed over workers, how
often they were retried or which pool incarnation finally ran them -- the
parallel-equivalence and chaos tests pin this down.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.analysis import ScrutinyResult, scrutinize
from repro.core.criticality import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                                    DEFAULT_PROBE_SCALE,
                                    DEFAULT_SNAPSHOT_SCHEDULE,
                                    DEFAULT_TRACE_CACHE)
from repro.core.store import ResultStore
from repro.experiments.faults import (DEFAULT_FAULT_POLICY, BatchJournal,
                                      ChaosConfig, ChaosHang, FaultPolicy,
                                      FaultStats, JobFailure,
                                      JobPoisonedError, chaos_preamble,
                                      corrupt_file, failure_from_exception,
                                      pickle_roundtrip_safe)
from repro.npb import registry

__all__ = ["ScrutinyJob", "ParallelRunner", "run_job", "job_token",
           "default_workers"]


@dataclass(frozen=True)
class ScrutinyJob:
    """One unit of analysis work; picklable and usable as a dict key.

    The sweep knobs (``sweep``, ``snapshot_schedule``/``snapshot_budget``,
    ``trace_cache``, ``plan_optimize``/``executor``) parameterise the
    ``"ad"`` and ``"activity"`` methods
    alike -- a segmented activity job chains read masks across boundaries
    and replays compiled plan transfers, bitwise-identical to the
    monolithic walk -- and all join :meth:`key_params`, so jobs differing
    in any of them never alias in the result store.
    """

    benchmark: str
    problem_class: str = "S"
    method: str = "ad"
    n_probes: int = 1
    step: int | None = None
    steps: int | None = None
    sweep: str = "monolithic"
    probe_scale: float = DEFAULT_PROBE_SCALE
    probe_batching: str = "batched"
    snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE
    snapshot_budget: int | None = None
    trace_cache: str = DEFAULT_TRACE_CACHE
    plan_optimize: str = DEFAULT_PLAN_OPTIMIZE
    executor: str = DEFAULT_EXECUTOR
    #: scratch location of the "spill" schedule -- execution detail, not
    #: analysis identity, hence absent from :meth:`key_params` and from the
    #: job's equality/hash (jobs differing only in scratch location are the
    #: same analysis and must deduplicate)
    spill_dir: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", self.benchmark.upper())

    def key_params(self) -> dict[str, Any]:
        """The job's identity as :class:`ResultStore` key parameters."""
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "method": self.method,
            "n_probes": self.n_probes,
            "step": self.step,
            "steps": self.steps,
            "sweep": self.sweep,
            "probe_scale": self.probe_scale,
            "probe_batching": self.probe_batching,
            "snapshot_schedule": self.snapshot_schedule,
            "snapshot_budget": self.snapshot_budget,
            "trace_cache": self.trace_cache,
            "plan_optimize": self.plan_optimize,
            "executor": self.executor,
        }


def job_token(job: ScrutinyJob) -> str:
    """Stable 16-hex-digit digest of a job's identity.

    Keys the batch journal, the deterministic backoff jitter and the chaos
    harness's targeting.  Version-independent (unlike the result-store
    key): a journal written by one package version still identifies the
    same *jobs* under the next, even though their cached results are
    invalidated.
    """
    blob = json.dumps(job.key_params(), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]


def run_job(job: ScrutinyJob) -> ScrutinyResult:
    """Execute one job from scratch.

    Module-level so it pickles under every multiprocessing start method
    (``spawn`` included); builds its own benchmark instance and its own
    fixed-seed generator, so workers share nothing.
    """
    bench = registry.create(job.benchmark, job.problem_class)
    return scrutinize(bench, step=job.step, method=job.method,
                      n_probes=job.n_probes, steps=job.steps,
                      sweep=job.sweep, probe_scale=job.probe_scale,
                      probe_batching=job.probe_batching,
                      snapshot_schedule=job.snapshot_schedule,
                      snapshot_budget=job.snapshot_budget,
                      spill_dir=job.spill_dir,
                      trace_cache=job.trace_cache,
                      plan_optimize=job.plan_optimize,
                      executor=job.executor)


def _guarded_run_job(job: ScrutinyJob, attempt: int,
                     chaos: ChaosConfig | None) -> tuple[str, Any]:
    """Pool-side wrapper around :func:`run_job`: never raises.

    Returns ``("ok", result)`` or ``("err", payload)`` where the payload
    carries everything the parent needs for the structured failure record
    (exception type/message, full traceback text, and -- when picklable --
    the original exception for ``on_failure="raise"`` re-raising).  Chaos
    injections run first, inside the worker, so a simulated worker kill
    really takes a process down.
    """
    import traceback as _traceback
    try:
        chaos_preamble(chaos, job_token(job), attempt, in_worker=True)
        return "ok", run_job(job)
    except BaseException as exc:  # noqa: BLE001 - converted to a record
        return "err", {
            "exception_type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(_traceback.format_exception(
                type(exc), exc, exc.__traceback__)),
            "exception": pickle_roundtrip_safe(exc),
        }


def default_workers() -> int:
    """Worker count saturating the local machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _pick_context() -> multiprocessing.context.BaseContext:
    """``fork`` on Linux (no re-import cost), platform default elsewhere.

    macOS lists ``fork`` as available but defaults to ``spawn`` because
    forking a threaded/Accelerate-backed process is crash-prone there;
    respect that choice rather than forcing fork wherever it exists.
    """
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _failure_result(job: ScrutinyJob, failure: JobFailure) -> ScrutinyResult:
    """The failure-marker result a quarantined job contributes."""
    return ScrutinyResult(benchmark=job.benchmark,
                          problem_class=job.problem_class,
                          step=-1 if job.step is None else job.step,
                          method=job.method, variables={}, state={},
                          failure=failure)


class ParallelRunner:
    """Schedules scrutiny jobs over a result store and a worker pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (the default) runs every job in
        the calling process.
    store:
        Optional :class:`~repro.core.store.ResultStore` consulted before
        computing and updated after; ``None`` disables persistence.
    mp_context:
        Multiprocessing start-method name to force (``"spawn"``,
        ``"fork"``, ...); ``None`` picks ``fork`` when available.
    fault_policy:
        Retry/timeout policy (:class:`~repro.experiments.faults.
        FaultPolicy`); the default allows two cheap retries and no
        watchdog.  The timeout is enforced on the pool path only -- an
        in-process job cannot be preempted.
    on_failure:
        ``"raise"`` (default): a job that exhausts its retries re-raises
        its original exception (or :class:`JobPoisonedError` when the
        exception could not be shipped across the process boundary) --
        the legacy semantics.  ``"record"``: the job is quarantined, the
        batch completes, and the job's slot in the output carries a
        failure-marker :class:`~repro.core.analysis.ScrutinyResult`
        (``result.ok`` is False, ``result.failure`` holds the record).
    journal:
        Optional :class:`~repro.experiments.faults.BatchJournal` recording
        per-job completion for resumable batch runs.
    chaos:
        Optional :class:`~repro.experiments.faults.ChaosConfig` -- the
        deterministic fault-injection harness (tests/CI only).

    Telemetry accumulates in :attr:`stats`
    (:class:`~repro.experiments.faults.FaultStats`) across ``run`` calls.
    """

    #: monitor-loop poll interval (seconds): running-state observation and
    #: watchdog granularity -- fine enough to catch sub-second hangs, coarse
    #: enough to stay invisible next to a multi-second AD sweep
    _POLL_SECONDS = 0.02

    def __init__(self, workers: int = 1, store: ResultStore | None = None,
                 mp_context: str | None = None,
                 fault_policy: FaultPolicy | None = None,
                 on_failure: str = "raise",
                 journal: BatchJournal | None = None,
                 chaos: ChaosConfig | None = None) -> None:
        self.workers = max(1, int(workers))
        self.store = store
        self.mp_context = mp_context
        self.policy = fault_policy if fault_policy is not None \
            else DEFAULT_FAULT_POLICY
        if on_failure not in ("raise", "record"):
            raise ValueError(f"unknown on_failure {on_failure!r}; "
                             f"choose 'raise' or 'record'")
        self.on_failure = on_failure
        self.journal = journal
        self.chaos = chaos
        self.stats = FaultStats()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[ScrutinyJob]) -> list[ScrutinyResult]:
        """Results of ``jobs``, in input order.

        Cache hits are served from the store; the remaining distinct jobs
        are computed (in parallel when configured) and persisted *as they
        complete*, so even an interrupted batch preserves every finished
        result.  The returned list always aligns index-for-index with
        ``jobs``, regardless of worker scheduling, retries or re-queues.
        """
        jobs = list(jobs)
        results: dict[ScrutinyJob, ScrutinyResult] = {}

        todo: list[ScrutinyJob] = []
        corrupt_before = self.store.corrupt_entries \
            if self.store is not None else 0
        for job in dict.fromkeys(jobs):
            self.stats.jobs += 1
            token = job_token(job)
            cached = self.store.fetch(**job.key_params()) \
                if self.store is not None else None
            if cached is not None:
                results[job] = cached
                self.stats.cache_hits += 1
                if self.journal is not None and self.journal.is_done(token):
                    self.stats.journal_skips += 1
                continue
            if self.on_failure == "record" and self.journal is not None:
                known = self.journal.failure_for(token)
                if known is not None:
                    # resumed batch: don't burn retries on a job already
                    # journalled as poisoned -- surface the old record
                    results[job] = _failure_result(job, known)
                    self.stats.journal_poisoned_skips += 1
                    continue
            todo.append(job)
        if self.store is not None:
            self.stats.store_corrupt_entries += \
                self.store.corrupt_entries - corrupt_before

        if todo:
            self._execute(todo, lambda job, outcome:
                          results.__setitem__(job, outcome))

        return [results[job] for job in jobs]

    def run_one(self, job: ScrutinyJob) -> ScrutinyResult:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # completion plumbing (streaming store/journal updates)
    # ------------------------------------------------------------------
    def _complete(self, job: ScrutinyJob, result: ScrutinyResult,
                  emit: Callable[[ScrutinyJob, ScrutinyResult], None]
                  ) -> None:
        """Record one successful job: store, journal, chaos, telemetry."""
        self.stats.completed += 1
        emit(job, result)
        token = job_token(job)
        stored = False
        if self.store is not None:
            try:
                self.store.put(result, n_probes=job.n_probes,
                               step=job.step, steps=job.steps,
                               sweep=job.sweep,
                               probe_scale=job.probe_scale,
                               probe_batching=job.probe_batching,
                               snapshot_schedule=job.snapshot_schedule,
                               snapshot_budget=job.snapshot_budget,
                               trace_cache=job.trace_cache,
                               plan_optimize=job.plan_optimize,
                               executor=job.executor)
                stored = True
            except OSError:
                # an unwritable store degrades to no persistence;
                # it must never lose a computed result
                pass
        if self.journal is not None:
            self.journal.mark_done(token, job.benchmark)
        if stored and self.chaos is not None \
                and self.chaos.wants("corrupt-cache", token, 0):
            self._chaos_corrupt_entry(job, token)

    def _chaos_corrupt_entry(self, job: ScrutinyJob, token: str) -> None:
        """Damage the entry just written (chaos ``corrupt-cache`` mode)."""
        assert self.store is not None
        key = self.store.key(**job.key_params())
        meta_path, data_path = self.store._paths(job.benchmark, key)
        target = data_path if data_path.is_file() else meta_path
        try:
            corrupt_file(target, token, seed=self.chaos.seed)
            self.stats.chaos_corrupted_files += 1
        except OSError:  # pragma: no cover - chaos best-effort
            pass

    def _quarantine(self, job: ScrutinyJob, failure: JobFailure,
                    original: BaseException | None,
                    emit: Callable[[ScrutinyJob, ScrutinyResult], None]
                    ) -> None:
        """Give up on ``job``: journal, telemetry, record-or-raise."""
        self.stats.quarantined += 1
        self.stats.failures.append(failure)
        if self.journal is not None:
            self.journal.mark_poisoned(failure)
        if self.on_failure == "raise":
            if original is not None:
                raise original
            raise JobPoisonedError(failure)
        emit(job, _failure_result(job, failure))

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _execute(self, jobs: Sequence[ScrutinyJob],
                 emit: Callable[[ScrutinyJob, ScrutinyResult], None]
                 ) -> None:
        if self.workers > 1 and len(jobs) > 1:
            try:
                ctx = multiprocessing.get_context(self.mp_context) \
                    if self.mp_context else _pick_context()
                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(jobs)),
                    mp_context=ctx)
            except (OSError, ValueError, ImportError, RuntimeError,
                    multiprocessing.ProcessError):
                # no /dev/shm, sandboxed fork, missing start method, ...:
                # degrade to the in-process path, which is always available
                pool = None
            if pool is not None:
                self._execute_pool(jobs, pool, ctx, emit)
                return
        self._execute_inprocess(jobs, emit)

    # -- in-process ----------------------------------------------------
    def _execute_inprocess(self, jobs: Sequence[ScrutinyJob],
                           emit: Callable[[ScrutinyJob, ScrutinyResult],
                                          None]) -> None:
        """Sequential backend with the same retry/quarantine semantics.

        No watchdog: a job hang cannot be preempted from inside the same
        process (the chaos harness degrades its ``hang`` injection to a
        raised :class:`ChaosHang` here, so the retry path is still
        exercised).
        """
        for job in jobs:
            token = job_token(job)
            attempt = 0
            while True:
                try:
                    chaos_preamble(self.chaos, token, attempt,
                                   in_worker=False)
                    result = run_job(job)
                except Exception as exc:  # noqa: BLE001 - retried
                    attempt += 1
                    kind = "timeout" if isinstance(exc, ChaosHang) \
                        else "exception"
                    if kind == "timeout":
                        self.stats.timeouts += 1
                    else:
                        self.stats.transient_failures += 1
                    if attempt > self.policy.max_retries:
                        failure = failure_from_exception(
                            benchmark=job.benchmark, job_token=token,
                            exc=exc, attempts=attempt, kind=kind)
                        self._quarantine(job, failure, exc, emit)
                        break
                    self.stats.retries += 1
                    time.sleep(self.policy.delay(token, attempt))
                else:
                    self._complete(job, result, emit)
                    break

    # -- process pool --------------------------------------------------
    def _execute_pool(self, jobs: Sequence[ScrutinyJob],
                      pool: ProcessPoolExecutor,
                      ctx: multiprocessing.context.BaseContext,
                      emit: Callable[[ScrutinyJob, ScrutinyResult], None]
                      ) -> None:
        """Pool backend: watchdog, collapse recovery, bounded retries.

        Attempt accounting across a pool collapse: the culprit cannot be
        identified from :class:`BrokenProcessPool` alone, so the collapse
        charges one attempt to every job the monitor last observed
        *running* (falling back to every in-flight job when none was
        observed); merely-queued jobs are re-queued free of charge.  A
        job's result never depends on which pool incarnation ran it, so
        re-queues preserve bitwise determinism.
        """
        attempts: dict[ScrutinyJob, int] = {job: 0 for job in jobs}
        unfinished: set[ScrutinyJob] = set(jobs)
        pending: dict[Future, ScrutinyJob] = {}
        waiting: dict[ScrutinyJob, float] = {}   # token -> resubmit time
        started: dict[ScrutinyJob, float] = {}   # first observed running

        def submit(job: ScrutinyJob) -> None:
            fut = pool.submit(_guarded_run_job, job, attempts[job],
                              self.chaos)
            pending[fut] = job

        def respawn() -> None:
            nonlocal pool
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(jobs)), mp_context=ctx)

        def kill_workers() -> None:
            # there is no public API to abort a running future; terminating
            # the worker processes is the documented-by-usage escape hatch
            processes = getattr(pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass

        def register_failure(job: ScrutinyJob, kind: str,
                             exception_type: str, message: str,
                             traceback_text: str | None,
                             original: BaseException | None) -> None:
            attempts[job] += 1
            if kind == "timeout":
                self.stats.timeouts += 1
            elif kind == "exception":
                self.stats.transient_failures += 1
            if attempts[job] > self.policy.max_retries:
                token = job_token(job)
                failure = failure_from_exception(
                    benchmark=job.benchmark, job_token=token, exc=None,
                    attempts=attempts[job], kind=kind,
                    exception_type=exception_type, message=message,
                    traceback_text=traceback_text)
                unfinished.discard(job)
                started.pop(job, None)
                self._quarantine(job, failure, original, emit)
            else:
                self.stats.retries += 1
                delay = self.policy.delay(job_token(job), attempts[job])
                waiting[job] = time.monotonic() + delay
                started.pop(job, None)

        try:
            for job in jobs:
                submit(job)
            while unfinished:
                now = time.monotonic()
                for job, ready in list(waiting.items()):
                    if job not in unfinished:
                        waiting.pop(job)
                    elif now >= ready:
                        waiting.pop(job)
                        submit(job)
                if not pending:
                    if waiting:
                        time.sleep(self._POLL_SECONDS)
                        continue
                    break  # every unfinished job was quarantined
                done, _ = wait(list(pending), timeout=self._POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                collapsed: list[ScrutinyJob] = []
                for fut in done:
                    job = pending.pop(fut)
                    if job not in unfinished:
                        continue  # late echo of an abandoned attempt
                    try:
                        tag, payload = fut.result()
                    except BrokenProcessPool:
                        collapsed.append(job)
                        continue
                    except Exception as exc:  # noqa: BLE001 - submit layer
                        # the guarded worker never raises; anything here is
                        # pool plumbing (pickling, spawn import, ...)
                        register_failure(
                            job, "exception", type(exc).__name__, str(exc),
                            None, pickle_roundtrip_safe(exc))
                        continue
                    if tag == "ok":
                        unfinished.discard(job)
                        started.pop(job, None)
                        self._complete(job, payload, emit)
                    else:
                        register_failure(
                            job, "exception", payload["exception_type"],
                            payload["message"], payload["traceback"],
                            payload["exception"])
                if collapsed:
                    # every job still on the broken pool is a casualty too,
                    # whether its future already resolved or not
                    self.stats.worker_deaths += 1
                    casualties = list(dict.fromkeys(
                        collapsed + [job for job in pending.values()
                                     if job in unfinished]))
                    # charge the collapse to the jobs last observed
                    # running (the culprit is among them); merely-queued
                    # jobs are re-queued free of charge.  Fall back to
                    # charging every casualty when none was observed.
                    observed = [job for job in casualties if job in started]
                    for job in (observed if observed else casualties):
                        register_failure(job, "worker-death",
                                         "BrokenProcessPool",
                                         "worker process died mid-job",
                                         None, None)
                    pending.clear()
                    started.clear()
                    respawn()
                    requeue = [job for job in casualties
                               if job in unfinished and job not in waiting]
                    self.stats.requeued += sum(
                        1 for job in casualties if job in unfinished)
                    for job in requeue:
                        submit(job)
                    continue
                if self.policy.timeout is not None:
                    deadline = time.monotonic() - self.policy.timeout
                    timed_out = [job for job in pending.values()
                                 if started.get(job, float("inf"))
                                 < deadline]
                    if timed_out:
                        # a hung worker cannot be cancelled individually:
                        # charge the hung attempts, tear the pool down and
                        # re-queue every in-flight job (innocents without
                        # being charged an attempt)
                        for job in timed_out:
                            register_failure(
                                job, "timeout", "TimeoutError",
                                f"attempt exceeded "
                                f"{self.policy.timeout:g}s wall-clock "
                                f"timeout", None, None)
                        interrupted = [job for job in pending.values()
                                       if job not in timed_out
                                       and job in unfinished]
                        kill_workers()
                        respawn()
                        pending.clear()
                        started.clear()
                        self.stats.requeued += len(interrupted) + sum(
                            1 for job in timed_out if job in unfinished)
                        for job in interrupted:
                            submit(job)
                        continue
                # observe which in-flight jobs a worker has picked up (the
                # watchdog's clock and the collapse-charging evidence)
                now = time.monotonic()
                for fut, job in pending.items():
                    if fut.running() and job not in started:
                        started[job] = now
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ParallelRunner(workers={self.workers}, "
                f"store={self.store!r})")
