"""Parallel scrutiny engine.

The per-benchmark (and per-method) analyses are embarrassingly parallel:
each job instantiates its own benchmark port, runs it to the checkpoint
step and performs the AD sweep with no shared mutable state.  This module
fans such jobs out across a :mod:`multiprocessing` pool and merges the
results back deterministically:

* :class:`ScrutinyJob` -- a picklable, hashable description of one analysis
  (benchmark, problem class, method, n_probes, step, steps);
* :func:`run_job` -- the module-level (hence spawn-safe) worker function;
* :class:`ParallelRunner` -- schedules jobs over an optional
  :class:`~repro.core.store.ResultStore` (cache first, pool second),
  deduplicates identical jobs, preserves input order in the output, and
  falls back to in-process execution when ``workers == 1``, when only one
  job is left after cache hits, or when the platform cannot deliver a
  working pool.

Determinism: every job builds its own fixed-seed probe generator inside
:func:`~repro.core.analysis.scrutinize` (``rng=None``), so the masks are
bitwise-identical no matter how jobs are distributed over workers -- the
parallel-equivalence tests in ``tests/experiments/test_parallel.py`` pin
this down.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.analysis import ScrutinyResult, scrutinize
from repro.core.criticality import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                                    DEFAULT_PROBE_SCALE,
                                    DEFAULT_SNAPSHOT_SCHEDULE,
                                    DEFAULT_TRACE_CACHE)
from repro.core.store import ResultStore
from repro.npb import registry

__all__ = ["ScrutinyJob", "ParallelRunner", "run_job", "default_workers"]


@dataclass(frozen=True)
class ScrutinyJob:
    """One unit of analysis work; picklable and usable as a dict key.

    The sweep knobs (``sweep``, ``snapshot_schedule``/``snapshot_budget``,
    ``trace_cache``, ``plan_optimize``/``executor``) parameterise the
    ``"ad"`` and ``"activity"`` methods
    alike -- a segmented activity job chains read masks across boundaries
    and replays compiled plan transfers, bitwise-identical to the
    monolithic walk -- and all join :meth:`key_params`, so jobs differing
    in any of them never alias in the result store.
    """

    benchmark: str
    problem_class: str = "S"
    method: str = "ad"
    n_probes: int = 1
    step: int | None = None
    steps: int | None = None
    sweep: str = "monolithic"
    probe_scale: float = DEFAULT_PROBE_SCALE
    probe_batching: str = "batched"
    snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE
    snapshot_budget: int | None = None
    trace_cache: str = DEFAULT_TRACE_CACHE
    plan_optimize: str = DEFAULT_PLAN_OPTIMIZE
    executor: str = DEFAULT_EXECUTOR
    #: scratch location of the "spill" schedule -- execution detail, not
    #: analysis identity, hence absent from :meth:`key_params` and from the
    #: job's equality/hash (jobs differing only in scratch location are the
    #: same analysis and must deduplicate)
    spill_dir: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", self.benchmark.upper())

    def key_params(self) -> dict[str, Any]:
        """The job's identity as :class:`ResultStore` key parameters."""
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "method": self.method,
            "n_probes": self.n_probes,
            "step": self.step,
            "steps": self.steps,
            "sweep": self.sweep,
            "probe_scale": self.probe_scale,
            "probe_batching": self.probe_batching,
            "snapshot_schedule": self.snapshot_schedule,
            "snapshot_budget": self.snapshot_budget,
            "trace_cache": self.trace_cache,
            "plan_optimize": self.plan_optimize,
            "executor": self.executor,
        }


def run_job(job: ScrutinyJob) -> ScrutinyResult:
    """Execute one job from scratch.

    Module-level so it pickles under every multiprocessing start method
    (``spawn`` included); builds its own benchmark instance and its own
    fixed-seed generator, so workers share nothing.
    """
    bench = registry.create(job.benchmark, job.problem_class)
    return scrutinize(bench, step=job.step, method=job.method,
                      n_probes=job.n_probes, steps=job.steps,
                      sweep=job.sweep, probe_scale=job.probe_scale,
                      probe_batching=job.probe_batching,
                      snapshot_schedule=job.snapshot_schedule,
                      snapshot_budget=job.snapshot_budget,
                      spill_dir=job.spill_dir,
                      trace_cache=job.trace_cache,
                      plan_optimize=job.plan_optimize,
                      executor=job.executor)


def default_workers() -> int:
    """Worker count saturating the local machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _pick_context() -> multiprocessing.context.BaseContext:
    """``fork`` on Linux (no re-import cost), platform default elsewhere.

    macOS lists ``fork`` as available but defaults to ``spawn`` because
    forking a threaded/Accelerate-backed process is crash-prone there;
    respect that choice rather than forcing fork wherever it exists.
    """
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelRunner:
    """Schedules scrutiny jobs over a result store and a worker pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (the default) runs every job in
        the calling process.
    store:
        Optional :class:`~repro.core.store.ResultStore` consulted before
        computing and updated after; ``None`` disables persistence.
    mp_context:
        Multiprocessing start-method name to force (``"spawn"``,
        ``"fork"``, ...); ``None`` picks ``fork`` when available.
    """

    def __init__(self, workers: int = 1, store: ResultStore | None = None,
                 mp_context: str | None = None) -> None:
        self.workers = max(1, int(workers))
        self.store = store
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[ScrutinyJob]) -> list[ScrutinyResult]:
        """Results of ``jobs``, in input order.

        Cache hits are served from the store; the remaining distinct jobs
        are computed (in parallel when configured) and persisted.  The
        returned list always aligns index-for-index with ``jobs``,
        regardless of worker scheduling.
        """
        jobs = list(jobs)
        results: dict[ScrutinyJob, ScrutinyResult] = {}

        todo: list[ScrutinyJob] = []
        for job in dict.fromkeys(jobs):
            cached = self.store.fetch(**job.key_params()) \
                if self.store is not None else None
            if cached is not None:
                results[job] = cached
            else:
                todo.append(job)

        if todo:
            for job, result in zip(todo, self._execute(todo)):
                results[job] = result
                if self.store is not None:
                    try:
                        self.store.put(result, n_probes=job.n_probes,
                                       step=job.step, steps=job.steps,
                                       sweep=job.sweep,
                                       probe_scale=job.probe_scale,
                                       probe_batching=job.probe_batching,
                                       snapshot_schedule=job.snapshot_schedule,
                                       snapshot_budget=job.snapshot_budget,
                                       trace_cache=job.trace_cache,
                                       plan_optimize=job.plan_optimize,
                                       executor=job.executor)
                    except OSError:
                        # an unwritable store degrades to no persistence;
                        # it must never lose a computed result
                        pass

        return [results[job] for job in jobs]

    def run_one(self, job: ScrutinyJob) -> ScrutinyResult:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _execute(self, jobs: Sequence[ScrutinyJob]) -> list[ScrutinyResult]:
        if self.workers == 1 or len(jobs) <= 1:
            return [run_job(job) for job in jobs]
        try:
            ctx = multiprocessing.get_context(self.mp_context) \
                if self.mp_context else _pick_context()
            pool = ctx.Pool(processes=min(self.workers, len(jobs)))
        except (OSError, ValueError, ImportError, RuntimeError,
                multiprocessing.ProcessError):
            # no /dev/shm, sandboxed fork, missing start method, ...:
            # degrade to the sequential path, which is always available.
            # Only pool *creation* falls back -- an exception raised by a
            # job itself propagates from map() below, rather than silently
            # re-running the whole batch sequentially first.
            return [run_job(job) for job in jobs]
        with pool:
            # map (not imap_unordered) so output order matches input order
            return pool.map(run_job, jobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ParallelRunner(workers={self.workers}, "
                f"store={self.store!r})")
