"""Figures 3-8 -- critical/uncritical distributions within variables.

For every figure of the paper's evaluation section this module produces the
underlying criticality mask, a terminal rendering, a textual description and
a set of structural checks that encode what the paper's figure shows:

* Figure 3 -- BT/SP ``u`` (and LU ``u[..0-3]``, ``rho_i``, ``qs``, ``rsd``):
  uncritical elements exactly on the padded ``j == 12`` and ``i == 12``
  faces of the 12x13x13 component cubes, all five components identical.
* Figure 4 -- MG ``u``: a contiguous critical prefix of 39304 elements
  (the 34x34x34 finest level) followed by an uncritical tail.
* Figure 5 -- MG ``r``: the repetitive stripe pattern created by the
  restriction loop bounds (indices 0..32 of each dimension of the finest
  block are critical).
* Figure 6 -- CG ``x``: the first 1400 elements critical, the final 2
  (declared-but-unused) elements uncritical.
* Figure 7 -- LU ``u[..][4]``: the union of the three directional
  energy-flux boxes, 128 more uncritical elements than the Figure 3 pattern.
* Figure 8 -- FT ``y``: only the padding plane ``k == 64`` uncritical.

Use :func:`run` for a single figure or :func:`run_all` for the whole set;
pass ``export_dir`` to leave CSV/JSON/PGM artefacts next to the text output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.masks import uncritical_planes
from repro.viz import (describe_mask, export_mask, identical_components,
                       legend, render_mask_1d, render_mask_2d, render_runs)

from .runner import ExperimentReport, ExperimentRunner

__all__ = ["FIGURES", "FigureResult", "run", "run_all"]


#: figure id -> (benchmark, variable) it visualises
FIGURES: dict[str, tuple[str, str]] = {
    "figure3": ("BT", "u"),
    "figure4": ("MG", "u"),
    "figure5": ("MG", "r"),
    "figure6": ("CG", "x"),
    "figure7": ("LU", "u"),
    "figure8": ("FT", "y"),
}


@dataclass
class FigureResult:
    """Mask, rendering and structural checks of one paper figure."""

    figure: str
    benchmark: str
    variable: str
    mask: np.ndarray
    checks: dict[str, bool] = field(default_factory=dict)
    description: str = ""
    rendering: str = ""

    @property
    def matches_paper(self) -> bool:
        """True when every structural check holds."""
        return all(self.checks.values())


# ---------------------------------------------------------------------------
# per-figure builders
# ---------------------------------------------------------------------------

def _figure3(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("BT").variables["u"]
    mask = crit.mask
    cube = mask[..., 0]
    planes = uncritical_planes(cube)
    checks = {
        "five_components_identical": identical_components(mask),
        "uncritical_only_on_j12_i12_faces": planes == {1: [12], 2: [12]},
        "uncritical_count_is_1500": crit.n_uncritical == 1500,
    }
    sp_mask = runner.result("SP").variables["u"].mask
    checks["same_pattern_in_sp"] = bool(np.array_equal(mask, sp_mask))
    rendering = (legend() + "\n"
                 + "u[..., 0] plane at k = 0 (j down, i across):\n"
                 + render_mask_2d(cube[0], row_label="j"))
    return FigureResult("figure3", "BT", "u", mask, checks,
                        describe_mask(cube, ("k", "j", "i")), rendering)


def _figure4(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("MG").variables["u"]
    mask = crit.mask
    flat = mask.reshape(-1)
    finest = 34 ** 3
    checks = {
        "critical_prefix_is_finest_level": bool(flat[:finest].all()),
        "tail_is_uncritical": bool(~flat[finest:].any()),
        "uncritical_count_is_7176": crit.n_uncritical == 7176,
    }
    rendering = (legend() + "\n" + render_mask_1d(flat, width=100) + "\n"
                 + render_runs(flat))
    return FigureResult("figure4", "MG", "u", mask, checks,
                        describe_mask(flat), rendering)


def _figure5(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("MG").variables["r"]
    mask = crit.mask
    flat = mask.reshape(-1)
    finest = 34 ** 3
    cube = flat[:finest].reshape(34, 34, 34)
    expected_cube = np.zeros((34, 34, 34), dtype=bool)
    expected_cube[:33, :33, :33] = True
    checks = {
        "finest_block_reads_indices_0_to_32": bool(
            np.array_equal(cube, expected_cube)),
        "tail_is_uncritical": bool(~flat[finest:].any()),
        "uncritical_count_is_10543": crit.n_uncritical == 10543,
        "pattern_repeats_with_period_34": bool(np.array_equal(
            flat[:34 * 33], np.tile(flat[:34], 33))),
    }
    rendering = (legend() + "\n"
                 + "first 340 flat elements (10 stripes of 34):\n"
                 + "\n".join(render_mask_1d(flat[i * 34:(i + 1) * 34],
                                            width=34, show_counts=False)
                             for i in range(10)) + "\n"
                 + render_runs(flat, max_runs=6))
    return FigureResult("figure5", "MG", "r", mask, checks,
                        describe_mask(cube, ("k", "j", "i")), rendering)


def _figure6(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("CG").variables["x"]
    mask = crit.mask
    na = 1400 if runner.problem_class == "S" \
        else runner.benchmark("CG").params.na
    checks = {
        "first_na_elements_critical": bool(mask[:na].all()),
        "last_two_elements_uncritical": bool(~mask[na:].any()),
        "uncritical_count_is_2": crit.n_uncritical == 2,
    }
    rendering = (legend() + "\n" + render_mask_1d(mask, width=100) + "\n"
                 + render_runs(mask))
    return FigureResult("figure6", "CG", "x", mask, checks,
                        describe_mask(mask), rendering)


def _figure7(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("LU").variables["u"]
    mask = crit.mask
    gp = runner.benchmark("LU").params.grid_points
    energy = mask[..., 4]
    expected = np.zeros_like(energy)
    expected[1:gp - 1, 1:gp - 1, 0:gp] = True
    expected[1:gp - 1, 0:gp, 1:gp - 1] = True
    expected[0:gp, 1:gp - 1, 1:gp - 1] = True
    figure3_pattern = np.zeros_like(energy)
    figure3_pattern[0:gp, 0:gp, 0:gp] = True
    checks = {
        "energy_component_is_union_of_three_boxes": bool(
            np.array_equal(energy, expected)),
        "components_0_to_3_follow_figure3": all(
            uncritical_planes(mask[..., m]) == {1: [12], 2: [12]}
            for m in range(4)),
        "128_extra_uncritical_vs_figure3": int(
            np.count_nonzero(figure3_pattern) - np.count_nonzero(energy))
        == 128,
        "uncritical_count_is_1628": crit.n_uncritical == 1628,
    }
    rendering = (legend() + "\n"
                 + "u[..., 4] plane at k = 5 (j down, i across):\n"
                 + render_mask_2d(energy[5], row_label="j") + "\n"
                 + "u[..., 4] plane at k = 0:\n"
                 + render_mask_2d(energy[0], row_label="j"))
    return FigureResult("figure7", "LU", "u", mask, checks,
                        describe_mask(energy, ("k", "j", "i")), rendering)


def _figure8(runner: ExperimentRunner) -> FigureResult:
    crit = runner.result("FT").variables["y"]
    mask = crit.mask
    nz = runner.benchmark("FT").params.nz
    checks = {
        "logical_grid_fully_critical": bool(mask[:, :, :nz].all()),
        "padding_plane_uncritical": bool(~mask[:, :, nz:].any()),
        "uncritical_count_is_4096": crit.n_uncritical == 4096,
    }
    rendering = (legend() + "\n"
                 + "y[0, :, :] plane (j down, k across; last column is the "
                   "padding layer):\n"
                 + render_mask_2d(mask[0], row_label="j"))
    return FigureResult("figure8", "FT", "y", mask, checks,
                        describe_mask(mask, ("i", "j", "k")), rendering)


_BUILDERS = {
    "figure3": _figure3,
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "figure7": _figure7,
    "figure8": _figure8,
}


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

def run(figure: str, runner: ExperimentRunner | None = None,
        export_dir: str | Path | None = None) -> ExperimentReport:
    """Regenerate one figure ("figure3" .. "figure8")."""
    key = figure.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown figure {figure!r}; "
                       f"known: {', '.join(_BUILDERS)}")
    runner = runner or ExperimentRunner()
    result = _BUILDERS[key](runner)

    text_parts = [f"{key}: {result.benchmark}({result.variable})",
                  result.description, "", result.rendering, "", "checks:"]
    for name, ok in result.checks.items():
        text_parts.append(f"  [{'x' if ok else ' '}] {name}")
    if export_dir is not None:
        artefacts = export_mask(result.mask, export_dir,
                                f"{key}_{result.benchmark.lower()}_"
                                f"{result.variable}",
                                metadata={"figure": key,
                                          "benchmark": result.benchmark,
                                          "variable": result.variable},
                                write_csv=result.mask.size <= 20000)
        text_parts.append("exported: " + ", ".join(
            str(p) for p in artefacts.values()))

    return ExperimentReport(
        name=key,
        text="\n".join(text_parts),
        data={"figure": result, "checks": result.checks},
        matches_paper=result.matches_paper,
    )


def run_all(runner: ExperimentRunner | None = None,
            export_dir: str | Path | None = None) -> ExperimentReport:
    """Regenerate every figure and aggregate the checks."""
    runner = runner or ExperimentRunner()
    # batch the underlying analyses so a parallel runner fans them out
    # once; SP is not a FIGURES key but _figure3 reads it for the
    # shared-pattern cross-check
    runner.prefetch(sorted({bench for bench, _var in FIGURES.values()}
                           | {"SP"}))
    reports = [run(figure, runner, export_dir) for figure in _BUILDERS]
    text = "\n\n".join(r.text for r in reports)
    return ExperimentReport(
        name="figures",
        text=text,
        data={"figures": {r.name: r.data["figure"] for r in reports}},
        matches_paper=all(r.matches_paper for r in reports),
    )
