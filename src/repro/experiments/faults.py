"""Fault-tolerance layer of the parallel scrutiny engine.

The scrutiny jobs the engine fans out are pure functions of their
:class:`~repro.experiments.parallel.ScrutinyJob` description, which makes
every fault-handling strategy safe: a job can be retried, re-queued onto a
fresh pool or resumed in a later process without changing a single bit of
its result.  This module collects the policy objects the engine consumes:

* :class:`FaultPolicy` -- per-job wall-clock timeout, bounded retries with
  deterministic exponential backoff + jitter;
* :class:`JobFailure` -- the structured record a poisoned job leaves behind
  (exception class, traceback digest, attempt count) instead of an
  exception tearing down the batch;
* :class:`BatchJournal` -- an append-only JSONL journal next to the
  :class:`~repro.core.store.ResultStore` recording per-job completion, so
  a re-invoked batch run skips finished jobs and remembers poisoned ones;
* :class:`FaultStats` -- ``SweepStats``-style telemetry counters
  (retries, timeouts, worker deaths, quarantines, journal skips);
* :class:`ChaosConfig` -- the deterministic, seed-driven fault-injection
  ("chaos") harness: worker kill, job hang, transient exception and
  cache-file corruption, each keyed on a stable per-job token so the same
  seed injects the same faults into the same jobs every run.

Everything here is deliberately free of wall-clock randomness: backoff
jitter and chaos targeting both derive from SHA-256 of stable tokens, so a
chaos run is reproducible and -- because injections only fire on early
attempts -- converges to results bitwise identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "FaultPolicy", "JobFailure", "JobPoisonedError", "BatchJournal",
    "FaultStats", "ChaosConfig", "ChaosError", "ChaosHang", "CHAOS_MODES",
    "parse_chaos", "chaos_preamble", "corrupt_file", "failure_from_exception",
]

#: injection modes of the chaos harness (the CLI's ``--chaos`` vocabulary)
CHAOS_MODES = ("worker-kill", "hang", "transient", "corrupt-cache")

#: exit status of a chaos-killed worker (recognisable in ps/strace output)
CHAOS_KILL_STATUS = 87


def _unit_fraction(token: str) -> float:
    """Deterministic pseudo-uniform draw in ``[0, 1)`` from ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


# ----------------------------------------------------------------------
# retry / timeout policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """Per-job retry and timeout policy of the fault-tolerant engine.

    Attributes
    ----------
    max_retries:
        Failed attempts a job may accumulate before it is quarantined as
        poisoned (``0`` = fail on the first error, the pre-fault-layer
        behaviour modulo the structured failure record).
    timeout:
        Wall-clock seconds one attempt may run before the engine recycles
        the pool and re-queues the job; ``None`` disables the watchdog.
        Only enforceable on the pool path -- an in-process job cannot be
        preempted (documented degradation).
    backoff / backoff_factor / backoff_cap:
        Exponential backoff between retry attempts:
        ``min(backoff * backoff_factor**(attempt-1), backoff_cap)``
        seconds, before jitter.
    jitter:
        Deterministic jitter fraction: the delay is stretched by up to
        ``jitter * 100`` percent, with the stretch drawn from SHA-256 of
        the (job token, attempt) pair -- reproducible, yet decorrelated
        across jobs so re-queued work does not stampede the pool.
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, token: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``token``."""
        base = min(self.backoff * self.backoff_factor ** max(0, attempt - 1),
                   self.backoff_cap)
        return base * (1.0 + self.jitter * _unit_fraction(
            f"backoff:{token}:{attempt}"))


#: the engine's default policy: a couple of cheap retries, no watchdog
DEFAULT_FAULT_POLICY = FaultPolicy()


# ----------------------------------------------------------------------
# structured failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobFailure:
    """What remains of a job the engine had to give up on.

    Carried on the failure-marker :class:`~repro.core.analysis.
    ScrutinyResult` (``on_failure="record"``) or wrapped in
    :class:`JobPoisonedError` (``on_failure="raise"``) instead of an
    unstructured exception tearing down the batch.
    """

    benchmark: str
    #: stable digest of the job's key parameters (journal/backoff token)
    job_token: str
    #: failure category: ``"exception"``, ``"timeout"`` or ``"worker-death"``
    kind: str
    exception_type: str
    message: str
    #: first 12 hex digits of SHA-256 of the formatted traceback -- enough
    #: to correlate recurring failures without shipping the full text
    traceback_digest: str
    #: failed attempts accumulated before quarantine
    attempts: int

    def describe(self) -> str:
        return (f"{self.benchmark} job {self.job_token} poisoned after "
                f"{self.attempts} failed attempt(s): [{self.kind}] "
                f"{self.exception_type}: {self.message} "
                f"(traceback {self.traceback_digest or 'n/a'})")

    def to_payload(self) -> dict[str, Any]:
        return {"benchmark": self.benchmark, "job_token": self.job_token,
                "kind": self.kind, "exception_type": self.exception_type,
                "message": self.message,
                "traceback_digest": self.traceback_digest,
                "attempts": self.attempts}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobFailure":
        return cls(benchmark=str(payload["benchmark"]),
                   job_token=str(payload["job_token"]),
                   kind=str(payload["kind"]),
                   exception_type=str(payload["exception_type"]),
                   message=str(payload["message"]),
                   traceback_digest=str(payload["traceback_digest"]),
                   attempts=int(payload["attempts"]))


def failure_from_exception(*, benchmark: str, job_token: str,
                           exc: BaseException | None, attempts: int,
                           kind: str = "exception",
                           exception_type: str | None = None,
                           message: str | None = None,
                           traceback_text: str | None = None) -> JobFailure:
    """Build a :class:`JobFailure` from a caught (or summarised) exception."""
    if exc is not None:
        exception_type = type(exc).__name__
        message = str(exc)
        if traceback_text is None:
            traceback_text = "".join(traceback.format_exception(
                type(exc), exc, exc.__traceback__))
    digest = hashlib.sha256(traceback_text.encode("utf-8", "replace")
                            ).hexdigest()[:12] if traceback_text else ""
    return JobFailure(benchmark=benchmark, job_token=job_token, kind=kind,
                      exception_type=exception_type or "Unknown",
                      message=message or "", traceback_digest=digest,
                      attempts=attempts)


class JobPoisonedError(RuntimeError):
    """Raised (``on_failure="raise"``) when a job exhausts its retries."""

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def pickle_roundtrip_safe(exc: BaseException) -> BaseException | None:
    """``exc`` if it survives a pickle round-trip, else ``None``.

    Worker processes ship the original exception back to the parent so
    ``on_failure="raise"`` can re-raise it verbatim; exceptions holding
    unpicklable payloads degrade to the structured record only.
    """
    try:
        return pickle.loads(pickle.dumps(exc))
    except Exception:
        return None


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
@dataclass
class FaultStats:
    """Failure/retry/quarantine counters of one :class:`ParallelRunner`.

    Cumulative over the runner's lifetime (one CLI invocation runs several
    batches through the same runner); the CLI prints :meth:`summary` when
    anything noteworthy happened.
    """

    #: distinct jobs submitted across all ``run`` calls
    jobs: int = 0
    #: jobs served from the persistent result store
    cache_hits: int = 0
    #: cache hits whose completion the batch journal had recorded
    journal_skips: int = 0
    #: journal entries for poisoned jobs honoured without re-running them
    journal_poisoned_skips: int = 0
    #: jobs that finished with a usable result
    completed: int = 0
    #: retry attempts scheduled (any failure kind)
    retries: int = 0
    #: failed attempts due to an exception inside the job
    transient_failures: int = 0
    #: attempts abandoned by the wall-clock watchdog
    timeouts: int = 0
    #: pool collapses observed (a worker died mid-batch)
    worker_deaths: int = 0
    #: jobs re-queued onto a respawned pool after a collapse/timeout
    requeued: int = 0
    #: jobs quarantined as poisoned after exhausting their retries
    quarantined: int = 0
    #: corrupt result-store entries quarantined during this runner's fetches
    store_corrupt_entries: int = 0
    #: cache files deliberately corrupted by the chaos harness
    chaos_corrupted_files: int = 0
    #: structured records of every quarantined job
    failures: list[JobFailure] = field(default_factory=list)

    def eventful(self) -> bool:
        """True when something beyond plain completions happened."""
        return bool(self.retries or self.timeouts or self.worker_deaths
                    or self.quarantined or self.journal_skips
                    or self.journal_poisoned_skips
                    or self.store_corrupt_entries
                    or self.chaos_corrupted_files)

    def summary(self) -> str:
        """One-paragraph human-readable summary (the CLI's epilogue)."""
        lines = [
            f"fault-tolerance: {self.jobs} job(s), "
            f"{self.cache_hits} cache hit(s) "
            f"({self.journal_skips} journal-confirmed), "
            f"{self.completed} computed, {self.retries} retr(ies), "
            f"{self.timeouts} timeout(s), "
            f"{self.worker_deaths} worker death(s), "
            f"{self.requeued} requeued, {self.quarantined} quarantined"]
        if self.store_corrupt_entries or self.chaos_corrupted_files:
            lines.append(
                f"result store: {self.store_corrupt_entries} corrupt "
                f"entr(ies) quarantined"
                + (f", {self.chaos_corrupted_files} chaos-corrupted "
                   f"file(s)" if self.chaos_corrupted_files else ""))
        if self.journal_poisoned_skips:
            lines.append(f"journal: {self.journal_poisoned_skips} "
                         f"known-poisoned job(s) skipped")
        for failure in self.failures:
            lines.append(f"  poisoned: {failure.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# chaos (fault-injection) harness
# ----------------------------------------------------------------------
class ChaosError(RuntimeError):
    """Transient failure injected by the chaos harness."""


class ChaosHang(ChaosError):
    """In-process stand-in for a hang (cannot sleep forever in-process)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic, seed-driven fault injection.

    Whether a given (mode, job, attempt) triple injects is a pure function
    of ``seed`` and the job's stable token: the same configuration replays
    the same faults, which is what lets the chaos suite assert bitwise
    identity with a fault-free run.  Injections fire only while
    ``attempt < max_attempts`` (default: the first attempt only), so a
    retried job always recovers; raise ``max_attempts`` beyond the engine's
    ``max_retries`` to simulate a genuinely poisoned job.

    Attributes
    ----------
    modes:
        Enabled injection modes (subset of :data:`CHAOS_MODES`).
    seed:
        Decorrelates targeting across chaos runs.
    rate:
        Fraction of jobs targeted per mode (deterministic per-job draw).
    hang_seconds:
        Nap length of the ``"hang"`` mode inside a worker; pick it above
        the policy timeout so the watchdog fires.
    kill_delay:
        Grace period before ``"worker-kill"`` pulls the trigger, giving the
        parent's monitor a chance to observe the job running (mirrors real
        OOM kills, which strike mid-execution rather than at job pickup).
    max_attempts:
        Injections fire while the job's attempt index is below this.
    """

    modes: tuple[str, ...] = ()
    seed: int = 0
    rate: float = 1.0
    hang_seconds: float = 30.0
    kill_delay: float = 0.2
    max_attempts: int = 1

    def __post_init__(self) -> None:
        unknown = [mode for mode in self.modes if mode not in CHAOS_MODES]
        if unknown:
            raise ValueError(
                f"unknown chaos mode(s) {unknown}; choose from "
                f"{', '.join(CHAOS_MODES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("chaos rate must be within [0, 1]")

    def wants(self, mode: str, token: str, attempt: int) -> bool:
        """True when ``mode`` should inject into attempt ``attempt``."""
        if mode not in self.modes or attempt >= self.max_attempts:
            return False
        return _unit_fraction(f"chaos:{self.seed}:{mode}:{token}") \
            < self.rate


def parse_chaos(spec: str, *, seed: int = 0,
                **overrides: Any) -> ChaosConfig:
    """Parse the CLI's ``--chaos worker-kill,corrupt-cache`` syntax."""
    modes = tuple(dict.fromkeys(
        part.strip() for part in spec.split(",") if part.strip()))
    if not modes:
        raise ValueError("--chaos needs at least one mode "
                         f"(choose from {', '.join(CHAOS_MODES)})")
    return ChaosConfig(modes=modes, seed=seed, **overrides)


def chaos_preamble(chaos: ChaosConfig | None, token: str, attempt: int,
                   *, in_worker: bool) -> None:
    """Run the start-of-job injections for (``token``, ``attempt``).

    Called by the worker function (``in_worker=True``: a kill really
    terminates the process, a hang really sleeps) and by the in-process
    fallback (``in_worker=False``: both degrade to raised
    :class:`ChaosError`/:class:`ChaosHang`, so the retry machinery still
    sees the fault without the main process dying or stalling).
    """
    if chaos is None:
        return
    if chaos.wants("worker-kill", token, attempt):
        if in_worker:
            time.sleep(chaos.kill_delay)
            os._exit(CHAOS_KILL_STATUS)
        raise ChaosError("chaos: simulated worker death (in-process)")
    if chaos.wants("hang", token, attempt):
        if in_worker:
            time.sleep(chaos.hang_seconds)
            return  # no watchdog configured: the hang was just a long nap
        raise ChaosHang("chaos: simulated hang (in-process)")
    if chaos.wants("transient", token, attempt):
        raise ChaosError("chaos: injected transient failure")


def corrupt_file(path: str | Path, token: str, seed: int = 0) -> str:
    """Deterministically damage ``path`` in place (chaos ``corrupt-cache``).

    Picks truncation or byte-garbling from the token draw, so repeated
    chaos runs exercise both corruption shapes across a batch.  Returns
    the damage kind for telemetry/tests.
    """
    path = Path(path)
    raw = path.read_bytes()
    if _unit_fraction(f"corrupt:{seed}:{token}") < 0.5 and len(raw) > 8:
        path.write_bytes(raw[:max(4, len(raw) // 3)])
        return "truncated"
    garbled = bytearray(raw if raw else b"\0" * 16)
    for offset in range(0, len(garbled), max(1, len(garbled) // 16)):
        garbled[offset] ^= 0xA5
    path.write_bytes(bytes(garbled))
    return "garbled"


# ----------------------------------------------------------------------
# batch journal (resumable runs)
# ----------------------------------------------------------------------
class BatchJournal:
    """Append-only JSONL journal of per-job batch completion.

    Lives next to the :class:`~repro.core.store.ResultStore` (the store
    holds the *results*, the journal holds the *progress*): every line is
    one ``{"token", "benchmark", "status"}`` record, appended and flushed
    as soon as a job completes, so a batch killed mid-run leaves a journal
    that lets the re-invoked run skip every finished job -- and, in
    ``record`` mode, skip re-running jobs already known to be poisoned.

    A torn final line (the writer died mid-append) is ignored on load, and
    an unreadable/unwritable journal degrades to "no journal": resumability
    is an optimisation and must never fail a run.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] | None = None

    # -- loading --------------------------------------------------------
    def entries(self) -> dict[str, dict[str, Any]]:
        """Journal records keyed by job token (loaded lazily, cached)."""
        if self._entries is None:
            loaded: dict[str, dict[str, Any]] = {}
            try:
                text = self.path.read_text()
            except OSError:
                text = ""
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    loaded[str(record["token"])] = record
                except (ValueError, KeyError, TypeError):
                    continue  # torn/garbled line: ignore, keep the rest
            self._entries = loaded
        return self._entries

    def status(self, token: str) -> str | None:
        """``"done"``/``"poisoned"`` or ``None`` when unrecorded."""
        record = self.entries().get(token)
        return None if record is None else str(record.get("status"))

    def is_done(self, token: str) -> bool:
        return self.status(token) == "done"

    def failure_for(self, token: str) -> JobFailure | None:
        """The recorded failure of a poisoned job, when reconstructible."""
        record = self.entries().get(token)
        if record is None or record.get("status") != "poisoned":
            return None
        try:
            return JobFailure.from_payload(record["failure"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- writing --------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            return  # journalling degrades silently; results are unaffected
        if self._entries is not None:
            self._entries[str(record["token"])] = record

    def mark_done(self, token: str, benchmark: str) -> None:
        self._append({"token": token, "benchmark": benchmark,
                      "status": "done"})

    def mark_poisoned(self, failure: JobFailure) -> None:
        self._append({"token": failure.job_token,
                      "benchmark": failure.benchmark, "status": "poisoned",
                      "failure": failure.to_payload()})
