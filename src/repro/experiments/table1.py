"""Table I -- variables necessary for checkpointing per benchmark.

The paper identifies the checkpoint variables of every NPB benchmark by
trial and error (Table I); in this reproduction they are encoded in the
ports themselves, so the experiment simply enumerates the registry and
formats the declarations.  The driver also cross-checks the class-S shapes
against the sizes the paper states in its Section IV-B prose (element
counts such as 10140 for BT's ``u`` and 266240 for FT's ``y``).
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.npb import registry

from .runner import ExperimentReport, ExperimentRunner

__all__ = ["EXPECTED_ELEMENT_COUNTS", "run"]


#: element counts the paper states for the class-S array variables
EXPECTED_ELEMENT_COUNTS: dict[tuple[str, str], int] = {
    ("BT", "u"): 10140,
    ("SP", "u"): 10140,
    ("MG", "u"): 46480,
    ("MG", "r"): 46480,
    ("CG", "x"): 1402,
    ("LU", "u"): 10140,
    ("LU", "rho_i"): 2028,
    ("LU", "qs"): 2028,
    ("LU", "rsd"): 10140,
    ("FT", "y"): 266240,
    ("FT", "sums"): 6,
    ("EP", "q"): 10,
    ("IS", "key_array"): 65536,
    ("IS", "bucket_ptrs"): 512,
}


def run(runner: ExperimentRunner | None = None) -> ExperimentReport:
    """Regenerate Table I and check the class-S shapes against the paper."""
    runner = runner or ExperimentRunner()
    rows = registry.table1_rows(runner.problem_class)

    table_rows = [(entry.name, entry.declaration) for entry in rows]
    text = format_table(
        ["Name", "Variables and their data structures"], table_rows,
        title="Table I: manually identified variables necessary for "
              "checkpointing")

    mismatches: list[str] = []
    counts: dict[str, dict[str, int]] = {}
    for entry in rows:
        counts[entry.name] = {}
        for var in entry.variables:
            counts[entry.name][var.name] = var.n_elements
            expected = EXPECTED_ELEMENT_COUNTS.get((entry.name, var.name))
            if expected is not None and expected != var.n_elements:
                mismatches.append(
                    f"{entry.name}({var.name}): {var.n_elements} elements, "
                    f"paper states {expected}")

    if mismatches:
        text += "\n\nshape mismatches vs. the paper:\n" + "\n".join(
            f"  {m}" for m in mismatches)
    else:
        text += ("\n\nall class-S element counts match the sizes stated in "
                 "the paper")

    return ExperimentReport(
        name="table1",
        text=text,
        data={"rows": {entry.name: entry.declaration for entry in rows},
              "element_counts": counts,
              "mismatches": mismatches},
        matches_paper=not mismatches,
    )
