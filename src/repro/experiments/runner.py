"""Shared experiment infrastructure.

Every table and figure of the paper is regenerated from the same per-
benchmark :class:`~repro.core.analysis.ScrutinyResult`; the runner caches
those results so the experiment drivers (and the pytest-benchmark harness,
which calls several of them in one session) do not redo the AD analysis for
every table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.core.analysis import ScrutinyResult, scrutinize
from repro.core.criticality import VariableCriticality
from repro.npb import registry

__all__ = ["ExperimentRunner", "ExperimentReport"]


@dataclass
class ExperimentReport:
    """Uniform return type of the experiment drivers.

    Attributes
    ----------
    name:
        Experiment identifier ("table2", "figure3", ...).
    text:
        The formatted, human-readable output (what the CLI prints).
    data:
        Structured results for programmatic checks (what the tests and the
        benchmark harness assert on).
    matches_paper:
        True when every comparison against the paper's reported values is
        within the experiment's tolerance.
    """

    name: str
    text: str
    data: dict = field(default_factory=dict)
    matches_paper: bool = True

    def __str__(self) -> str:
        return self.text


class ExperimentRunner:
    """Caches benchmark instances and their scrutiny results.

    Parameters
    ----------
    problem_class:
        Problem class of the analysed runs; "S" reproduces the paper.
    method:
        Criticality method forwarded to :func:`repro.core.scrutinize`.
    n_probes:
        Number of AD probes per variable (1 = the paper's single sweep).
    step:
        Checkpoint step; ``None`` uses each benchmark's mid-run default.
    """

    def __init__(self, problem_class: str = "S", method: str = "ad",
                 n_probes: int = 1, step: int | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.problem_class = problem_class
        self.method = method
        self.n_probes = int(n_probes)
        self.step = step
        self.rng = rng
        self._benchmarks: dict[str, object] = {}
        self._results: dict[str, ScrutinyResult] = {}

    # ------------------------------------------------------------------
    # caching accessors
    # ------------------------------------------------------------------
    def benchmark(self, name: str):
        """The (cached) benchmark instance for ``name``."""
        key = name.upper()
        if key not in self._benchmarks:
            self._benchmarks[key] = registry.create(key, self.problem_class)
        return self._benchmarks[key]

    def result(self, name: str) -> ScrutinyResult:
        """The (cached) scrutiny result for benchmark ``name``."""
        key = name.upper()
        if key not in self._results:
            bench = self.benchmark(key)
            self._results[key] = scrutinize(
                bench, step=self.step, method=self.method,
                n_probes=self.n_probes, rng=self.rng)
        return self._results[key]

    def results(self, names: Iterable[str]
                ) -> dict[str, ScrutinyResult]:
        """Scrutiny results for several benchmarks, keyed by name."""
        return {name.upper(): self.result(name) for name in names}

    def criticality(self, names: Iterable[str]
                    ) -> dict[str, Mapping[str, VariableCriticality]]:
        """Per-benchmark variable criticality maps (report-layer input)."""
        return {name: result.variables
                for name, result in self.results(names).items()}

    def clear(self) -> None:
        """Drop all cached benchmarks and results."""
        self._benchmarks.clear()
        self._results.clear()
