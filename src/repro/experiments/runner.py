"""Shared experiment infrastructure.

Every table and figure of the paper is regenerated from the same per-
benchmark :class:`~repro.core.analysis.ScrutinyResult`.  The runner now
routes all analysis requests through the parallel scrutiny engine
(:mod:`repro.experiments.parallel`): results are looked up in an optional
persistent :class:`~repro.core.store.ResultStore` first, missing ones are
fanned out across a worker pool (``workers > 1``) or computed in process
(``workers == 1``, the default), and everything is memoised in process so
the experiment drivers (and the pytest-benchmark harness, which calls
several of them in one session) never redo an AD sweep.

Typical accelerated use::

    runner = ExperimentRunner(workers=4, cache_dir="~/.cache/repro")
    runner.prefetch(["BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS"])
    table2.run(runner)          # no AD sweep happens here any more
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.analysis import ScrutinyResult, scrutinize
from repro.core.criticality import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                                    DEFAULT_PROBE_SCALE,
                                    DEFAULT_SNAPSHOT_SCHEDULE,
                                    DEFAULT_TRACE_CACHE,
                                    VariableCriticality)
from repro.core.store import ResultStore
from repro.npb import registry

from .faults import BatchJournal, ChaosConfig, FaultPolicy, parse_chaos
from .parallel import ParallelRunner, ScrutinyJob

__all__ = ["ExperimentRunner", "ExperimentReport"]


@dataclass
class ExperimentReport:
    """Uniform return type of the experiment drivers.

    Attributes
    ----------
    name:
        Experiment identifier ("table2", "figure3", ...).
    text:
        The formatted, human-readable output (what the CLI prints).
    data:
        Structured results for programmatic checks (what the tests and the
        benchmark harness assert on).
    matches_paper:
        True when every comparison against the paper's reported values is
        within the experiment's tolerance.
    """

    name: str
    text: str
    data: dict = field(default_factory=dict)
    matches_paper: bool = True

    def __str__(self) -> str:
        return self.text


class ExperimentRunner:
    """Caches benchmark instances and their scrutiny results.

    Parameters
    ----------
    problem_class:
        Problem class of the analysed runs; "S" reproduces the paper.
    method:
        Criticality method forwarded to :func:`repro.core.scrutinize`.
    n_probes:
        Number of AD probes per variable (1 = the paper's single sweep).
    step:
        Checkpoint step; ``None`` uses each benchmark's mid-run default.
    rng:
        Explicit probe generator.  When given, analyses run sequentially in
        process and bypass the persistent store, because a shared stateful
        generator is neither parallelisable nor a valid cache key;
        ``None`` (the default) lets every analysis build its own fixed-seed
        generator, which is deterministic, parallel-safe and cacheable.
    workers:
        Worker processes for fanning out missing analyses (1 = in process).
    cache_dir:
        Directory of the persistent result store; ``None`` disables
        persistence (results are still memoised in process).
    use_cache:
        Set ``False`` to ignore ``cache_dir`` (the CLI's ``--no-cache``).
    sweep:
        Reverse-sweep strategy of the AD analyses: ``"monolithic"`` (one
        tape for the whole remaining computation) or ``"segmented"``
        (per-iteration tapes, peak memory bounded by one iteration;
        bitwise-identical masks).  The CLI's ``--sweep``.
    probe_scale:
        Relative magnitude of the probe perturbations; part of the cache
        key, so runs with different magnitudes never alias.  The CLI's
        ``--probe-scale``.
    probe_batching:
        ``"batched"`` (default: one trace and one sweep for all probes,
        with automatic per-probe fallback) or ``"per-probe"`` (the legacy
        loop).  The CLI's ``--probe-batching``.
    snapshot_schedule, snapshot_budget, spill_dir:
        Boundary-snapshot policy of the segmented sweep
        (:mod:`repro.ad.schedule`): ``"all"`` (default), ``"binomial"``
        (O(log steps) resident snapshots, optional explicit budget) or
        ``"spill"`` (boundaries on disk under ``spill_dir``); masks stay
        bitwise-identical.  ``snapshot_schedule``/``snapshot_budget`` join
        the cache key; ``spill_dir`` is scratch and does not.  The CLI's
        ``--snapshot-schedule``/``--snapshot-budget``/``--spill-dir``.
    trace_cache:
        ``"plan"`` (default: segmented steps compile to replay plans and
        replay instead of re-tracing, :mod:`repro.ad.plan`) or ``"off"``
        (re-trace every segment).  Identical masks either way; part of the
        cache key.  The CLI's ``--trace-cache``.
    plan_optimize, executor:
        Plan lowering level (``"fuse"``/``"off"``, :mod:`repro.ad.passes`)
        and plan backend (``"interp"``/``"numba"``, :mod:`repro.ad.exec`)
        of the compiled replay plans; both require ``sweep="segmented"``
        with ``trace_cache="plan"``, both preserve bitwise-identical
        masks, and both join the cache key.  The CLI's
        ``--plan-optimize``/``--executor``.
    fault_policy:
        Retry/timeout policy of the fault-tolerant engine
        (:class:`~repro.experiments.faults.FaultPolicy`); ``None`` uses
        the default (two retries, no watchdog).  Assembled by the CLI
        from ``--max-retries``/``--job-timeout``/``--retry-backoff``.
    on_failure:
        ``"raise"`` (default: a poisoned job re-raises, the legacy
        semantics) or ``"record"`` (the batch completes; the poisoned
        job's slot carries a failure-marker result).  The CLI's
        ``--on-failure``.
    journal:
        ``True`` (default) records per-job completion in a
        ``journal.jsonl`` next to the persistent store (when one is
        configured), making killed batch runs resumable; ``False``
        disables journalling.  The CLI's ``--no-journal``.
    chaos:
        Deterministic fault injection for tests/CI: a
        :class:`~repro.experiments.faults.ChaosConfig`, or a CLI-style
        mode string such as ``"worker-kill,corrupt-cache"``.  ``None``
        (default) injects nothing.  The CLI's ``--chaos``/
        ``--chaos-seed``.

    The ``sweep``/``snapshot_*``/``trace_cache``/plan knobs drive the
    ``"activity"`` method exactly as they drive ``"ad"`` (segmented
    chained read masks, plan-derived replays -- bitwise-identical masks);
    only ``"tangent"`` and ``"rule"`` ignore them.
    """

    def __init__(self, problem_class: str = "S", method: str = "ad",
                 n_probes: int = 1, step: int | None = None,
                 rng: np.random.Generator | None = None,
                 workers: int = 1,
                 cache_dir: str | Path | None = None,
                 use_cache: bool = True,
                 sweep: str = "monolithic",
                 probe_scale: float = DEFAULT_PROBE_SCALE,
                 probe_batching: str = "batched",
                 snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
                 snapshot_budget: int | None = None,
                 spill_dir: str | None = None,
                 trace_cache: str = DEFAULT_TRACE_CACHE,
                 plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
                 executor: str = DEFAULT_EXECUTOR,
                 fault_policy: FaultPolicy | None = None,
                 on_failure: str = "raise",
                 journal: bool = True,
                 chaos: ChaosConfig | str | None = None) -> None:
        self.problem_class = problem_class
        self.method = method
        self.n_probes = int(n_probes)
        self.step = step
        self.rng = rng
        self.sweep = sweep
        self.probe_scale = float(probe_scale)
        self.probe_batching = probe_batching
        self.snapshot_schedule = snapshot_schedule
        self.snapshot_budget = None if snapshot_budget is None \
            else int(snapshot_budget)
        self.spill_dir = spill_dir
        self.trace_cache = trace_cache
        self.plan_optimize = plan_optimize
        self.executor = executor
        self.workers = max(1, int(workers))
        store = None
        if cache_dir is not None and use_cache and rng is None:
            store = ResultStore(cache_dir)
        self.store = store
        if isinstance(chaos, str):
            chaos = parse_chaos(chaos)
        batch_journal = BatchJournal(Path(cache_dir) / "journal.jsonl") \
            if store is not None and journal else None
        self.engine = ParallelRunner(workers=self.workers, store=store,
                                     fault_policy=fault_policy,
                                     on_failure=on_failure,
                                     journal=batch_journal, chaos=chaos)
        self._benchmarks: dict[str, object] = {}
        self._results: dict[str, ScrutinyResult] = {}

    @property
    def fault_stats(self):
        """The engine's :class:`~repro.experiments.faults.FaultStats`."""
        return self.engine.stats

    # ------------------------------------------------------------------
    # caching accessors
    # ------------------------------------------------------------------
    def benchmark(self, name: str):
        """The (cached) benchmark instance for ``name``."""
        key = name.upper()
        if key not in self._benchmarks:
            self._benchmarks[key] = registry.create(key, self.problem_class)
        return self._benchmarks[key]

    def result(self, name: str) -> ScrutinyResult:
        """The (cached) scrutiny result for benchmark ``name``."""
        key = name.upper()
        if key not in self._results:
            self._results.update(self._compute([key]))
        return self._results[key]

    def results(self, names: Iterable[str]
                ) -> dict[str, ScrutinyResult]:
        """Scrutiny results for several benchmarks, keyed by name.

        Missing results are computed as one batch, so with ``workers > 1``
        this is where the per-benchmark analyses fan out across processes.
        """
        names = [name.upper() for name in names]
        missing = [name for name in dict.fromkeys(names)
                   if name not in self._results]
        if missing:
            self._results.update(self._compute(missing))
        return {name: self._results[name] for name in names}

    def prefetch(self, names: Iterable[str]) -> "ExperimentRunner":
        """Ensure results for ``names`` exist (parallel when configured).

        Returns the runner so drivers can chain ``runner.prefetch(...)``
        in front of their per-benchmark accesses.
        """
        self.results(names)
        return self

    def criticality(self, names: Iterable[str]
                    ) -> dict[str, Mapping[str, VariableCriticality]]:
        """Per-benchmark variable criticality maps (report-layer input)."""
        return {name: result.variables
                for name, result in self.results(names).items()}

    def clear(self) -> None:
        """Drop all in-process caches (the persistent store is untouched)."""
        self._benchmarks.clear()
        self._results.clear()

    # ------------------------------------------------------------------
    # computation backends
    # ------------------------------------------------------------------
    def _compute(self, names: Sequence[str]) -> dict[str, ScrutinyResult]:
        if self.rng is not None:
            # legacy sequential path: the caller's generator is shared
            # (stateful) across benchmarks, so order must be preserved and
            # neither the pool nor the store may be involved
            return {name: scrutinize(self.benchmark(name), step=self.step,
                                     method=self.method,
                                     n_probes=self.n_probes, rng=self.rng,
                                     sweep=self.sweep,
                                     probe_scale=self.probe_scale,
                                     probe_batching=self.probe_batching,
                                     snapshot_schedule=self.snapshot_schedule,
                                     snapshot_budget=self.snapshot_budget,
                                     spill_dir=self.spill_dir,
                                     trace_cache=self.trace_cache,
                                     plan_optimize=self.plan_optimize,
                                     executor=self.executor)
                    for name in names}
        jobs = [ScrutinyJob(benchmark=name, problem_class=self.problem_class,
                            method=self.method, n_probes=self.n_probes,
                            step=self.step, sweep=self.sweep,
                            probe_scale=self.probe_scale,
                            probe_batching=self.probe_batching,
                            snapshot_schedule=self.snapshot_schedule,
                            snapshot_budget=self.snapshot_budget,
                            spill_dir=self.spill_dir,
                            trace_cache=self.trace_cache,
                            plan_optimize=self.plan_optimize,
                            executor=self.executor)
                for name in names]
        return dict(zip(names, self.engine.run(jobs)))
