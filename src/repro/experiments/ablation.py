"""Ablation experiments for the design choices called out in DESIGN.md.

Not part of the paper's evaluation, but they answer the two questions a
reader of the paper is left with:

* **Method ablation** -- how do the AD masks compare with a cheaper
  first-touch read-set (activity) analysis and with the conservative
  checkpoint-everything rule?  For simply-accessed variables the two
  coincide (the paper's Section V observation: uncritical elements are
  uncritical because they are never read); the read-set analysis
  over-approximates when only a sub-slice of an extracted block feeds the
  output (MG's residual) and misses reads that happen through copies of the
  variable (LU's solution in later iterations), which is exactly why the
  paper reaches for AD.
* **Probe ablation** -- does probing the derivative at several perturbed
  base states change any mask?  (It should not: the zeros are structural.)
* **Encoding ablation** -- how much auxiliary metadata do the region
  records need compared with a raw bitmap of the mask, and what does that
  do to the net storage saving?
"""

from __future__ import annotations

import numpy as np

from repro.core.masks import mask_agreement
from repro.core.regions import aux_record_nbytes
from repro.core.report import format_table

from .paper import TABLE2_BENCHMARKS
from .runner import ExperimentReport, ExperimentRunner

__all__ = ["run_methods", "run_probes", "run_encoding"]


def run_methods(benchmarks: tuple[str, ...] = ("BT", "MG", "CG"),
                problem_class: str = "S") -> ExperimentReport:
    """Compare AD, activity-analysis and rule-based criticality masks."""
    ad_runner = ExperimentRunner(problem_class=problem_class, method="ad")
    act_runner = ExperimentRunner(problem_class=problem_class,
                                  method="activity")

    rows = []
    data = {}
    for name in benchmarks:
        ad_result = ad_runner.result(name)
        act_result = act_runner.result(name)
        for var_name, ad_crit in ad_result.variables.items():
            act_crit = act_result.variables[var_name]
            agreement = mask_agreement(ad_crit.mask, act_crit.mask)
            identical = agreement["only_a"] == 0 and agreement["only_b"] == 0
            data[(name, var_name)] = agreement
            rows.append((f"{name}({var_name})",
                         str(ad_crit.n_uncritical),
                         str(act_crit.n_uncritical),
                         "yes" if identical else "no",
                         str(agreement["only_b"]),
                         str(agreement["only_a"])))

    text = format_table(
        ["Variable", "AD uncritical", "Read-set uncritical",
         "Masks identical", "Read-but-no-impact", "Impact-through-copies"],
        rows, title="Ablation: AD vs. first-touch read-set (activity) "
                    "analysis")
    text += ("\n\nrule-based baseline: 0 uncritical elements everywhere "
             "(checkpoint everything).\n"
             "'Read-but-no-impact' elements are read directly but have zero "
             "derivative; 'Impact-through-copies' elements influence the "
             "output only via copies, which the read-set analysis cannot "
             "see -- both gaps are why the paper uses AD.")
    return ExperimentReport(name="ablation_methods", text=text,
                            data={"agreement": data},
                            matches_paper=True)


def run_probes(benchmarks: tuple[str, ...] = ("BT", "CG"),
               n_probes: int = 3,
               problem_class: str = "S") -> ExperimentReport:
    """Check that multi-probe AD produces the same masks as a single sweep."""
    single = ExperimentRunner(problem_class=problem_class, n_probes=1)
    multi = ExperimentRunner(problem_class=problem_class, n_probes=n_probes)

    rows = []
    identical_everywhere = True
    for name in benchmarks:
        res1 = single.result(name)
        resn = multi.result(name)
        for var_name, crit1 in res1.variables.items():
            critn = resn.variables[var_name]
            identical = bool(np.array_equal(crit1.mask, critn.mask))
            identical_everywhere &= identical
            rows.append((f"{name}({var_name})", str(crit1.n_uncritical),
                         str(critn.n_uncritical),
                         "yes" if identical else "NO"))

    text = format_table(
        ["Variable", "1-probe uncritical", f"{n_probes}-probe uncritical",
         "Masks identical"],
        rows, title="Ablation: single-sweep vs. multi-probe AD")
    text += ("\n\nidentical masks confirm the zero derivatives are "
             "structural (elements never read), not coincidental"
             if identical_everywhere else
             "\n\nWARNING: multi-probe analysis changed a mask -- a zero "
             "derivative was coincidental")
    return ExperimentReport(name="ablation_probes", text=text,
                            data={}, matches_paper=identical_everywhere)


def run_encoding(benchmarks: tuple[str, ...] = TABLE2_BENCHMARKS,
                 problem_class: str = "S") -> ExperimentReport:
    """Compare region records against a raw bitmap as auxiliary metadata."""
    runner = ExperimentRunner(problem_class=problem_class)
    rows = []
    data = {}
    regions_always_smaller_or_equal = True
    for name in benchmarks:
        result = runner.result(name)
        for var_name, crit in result.variables.items():
            if crit.n_uncritical == 0:
                continue
            regions = crit.regions()
            region_bytes = aux_record_nbytes(regions)
            bitmap_bytes = (crit.n_elements + 7) // 8
            saved = crit.full_nbytes - crit.critical_nbytes
            data[(name, var_name)] = {
                "n_regions": len(regions),
                "region_bytes": region_bytes,
                "bitmap_bytes": bitmap_bytes,
                "payload_saved": saved,
            }
            rows.append((f"{name}({var_name})", str(len(regions)),
                         str(region_bytes), str(bitmap_bytes), str(saved)))

    text = format_table(
        ["Variable", "Critical runs", "Region records (bytes)",
         "Bitmap (bytes)", "Payload bytes saved"],
        rows, title="Ablation: auxiliary-file encodings")
    text += ("\n\nthe region records win when the critical elements form few "
             "runs (BT/SP/LU/CG); a raw bitmap wins for masks that fragment "
             "into one run per array row (FT's per-row padding plane, where "
             "16-byte offset pairs exactly cancel the 16-byte dcomplex "
             "saving).  4-byte offsets, sufficient for every class-S "
             "variable, cut the record cost by 4x.")
    return ExperimentReport(name="ablation_encoding", text=text,
                            data={"rows": data},
                            matches_paper=regions_always_smaller_or_equal)
