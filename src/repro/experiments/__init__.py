"""Experiment drivers that regenerate every table and figure of the paper.

One module per artefact (see DESIGN.md for the experiment index):

=============  ==========================================================
module         paper artefact
=============  ==========================================================
``table1``     Table I (checkpoint-variable inventory)
``table2``     Table II (uncritical element counts)
``table3``     Table III (checkpoint storage before/after pruning)
``figures``    Figures 3-8 (critical/uncritical distributions)
``verify``     Section IV-C (restart verification with pruned checkpoints)
``ablation``   method / probe / encoding ablations (DESIGN.md extras)
``precision``  impact-aware mixed-precision checkpoints (the paper's
               future-work extension)
``incremental`` criticality pruning vs. element-level incremental deltas
=============  ==========================================================

Every driver accepts a shared :class:`~repro.experiments.runner
.ExperimentRunner` so the expensive AD analyses are computed once per
session, and returns an :class:`~repro.experiments.runner.ExperimentReport`
with formatted text, structured data and a ``matches_paper`` verdict.

The runner is backed by the parallel scrutiny engine
(:mod:`repro.experiments.parallel`): per-benchmark analyses are
embarrassingly parallel, so a runner constructed with ``workers=N`` fans
missing analyses out across ``N`` worker processes, and one constructed
with ``cache_dir=...`` persists every :class:`~repro.core.analysis
.ScrutinyResult` in a content-addressed on-disk store
(:class:`repro.core.store.ResultStore`) -- a warm cache regenerates every
table and figure without re-running a single AD sweep::

    runner = ExperimentRunner(workers=4, cache_dir="out/cache")
    runner.prefetch(registry.available_benchmarks())   # parallel sweep
    table2.run(runner)                                 # instant
    table3.run(runner)                                 # instant

The CLI exposes the same controls as global ``--workers N``,
``--cache-dir DIR`` and ``--no-cache`` flags.
"""

from . import (ablation, figures, incremental, paper, parallel, precision,
               table1, table2, table3, verify)
from .parallel import ParallelRunner, ScrutinyJob
from .runner import ExperimentReport, ExperimentRunner

__all__ = [
    "ExperimentRunner",
    "ExperimentReport",
    "ParallelRunner",
    "ScrutinyJob",
    "parallel",
    "paper",
    "table1",
    "table2",
    "table3",
    "figures",
    "verify",
    "ablation",
    "precision",
    "incremental",
]
