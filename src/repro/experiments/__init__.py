"""Experiment drivers that regenerate every table and figure of the paper.

One module per artefact (see DESIGN.md for the experiment index):

=============  ==========================================================
module         paper artefact
=============  ==========================================================
``table1``     Table I (checkpoint-variable inventory)
``table2``     Table II (uncritical element counts)
``table3``     Table III (checkpoint storage before/after pruning)
``figures``    Figures 3-8 (critical/uncritical distributions)
``verify``     Section IV-C (restart verification with pruned checkpoints)
``ablation``   method / probe / encoding ablations (DESIGN.md extras)
``precision``  impact-aware mixed-precision checkpoints (the paper's
               future-work extension)
``incremental`` criticality pruning vs. element-level incremental deltas
=============  ==========================================================

Every driver accepts a shared :class:`~repro.experiments.runner
.ExperimentRunner` so the expensive AD analyses are computed once per
session, and returns an :class:`~repro.experiments.runner.ExperimentReport`
with formatted text, structured data and a ``matches_paper`` verdict.
"""

from . import (ablation, figures, incremental, paper, precision, table1,
               table2, table3, verify)
from .runner import ExperimentReport, ExperimentRunner

__all__ = [
    "ExperimentRunner",
    "ExperimentReport",
    "paper",
    "table1",
    "table2",
    "table3",
    "figures",
    "verify",
    "ablation",
    "precision",
    "incremental",
]
