"""Extension experiment -- criticality pruning vs. incremental checkpointing.

Incremental (delta) checkpointing is the classic orthogonal way of shrinking
checkpoints (write only what changed since the last checkpoint); the paper
cites it in its related work.  This experiment measures, per benchmark and
at the same checkpoint cadence:

* the conventional full checkpoint,
* the paper's criticality-pruned checkpoint,
* a plain element-level incremental checkpoint (vs. the previous step), and
* the combination (changed **and** critical elements only),

and verifies that restoring the base checkpoint plus the delta chain and
finishing the run still passes each benchmark's verification.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.ckpt.incremental import (restore_chain,
                                    write_incremental_checkpoint)
from repro.ckpt.writer import write_full_checkpoint, write_pruned_checkpoint
from repro.core.report import format_bytes, format_table

from .runner import ExperimentReport, ExperimentRunner

__all__ = ["DEFAULT_BENCHMARKS", "run"]


#: benchmarks with a non-trivial floating-point payload
DEFAULT_BENCHMARKS = ("BT", "SP", "MG", "CG", "LU", "FT")


def run(runner: ExperimentRunner | None = None,
        benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
        directory: str | Path | None = None) -> ExperimentReport:
    """Compare full / pruned / incremental / combined checkpoint sizes."""
    runner = runner or ExperimentRunner()
    # batch the underlying analyses so a parallel runner fans them out once
    runner.prefetch(benchmarks)
    workdir = Path(directory) if directory is not None \
        else Path(tempfile.mkdtemp(prefix="repro_incremental_"))

    rows = []
    data = {}
    all_verified = True
    for name in benchmarks:
        bench = runner.benchmark(name)
        result = runner.result(name)
        step = result.step
        previous = bench.checkpoint_state(step - 1)
        current = result.state

        full = write_full_checkpoint(workdir / f"{name.lower()}_full.ckpt",
                                     bench, current, step=step)
        pruned = write_pruned_checkpoint(
            workdir / f"{name.lower()}_pruned.ckpt", bench, current,
            result.variables, step=step)
        incremental = write_incremental_checkpoint(
            workdir / f"{name.lower()}_incr.ckpt", bench, current, previous,
            step=step, base_step=step - 1)
        combined = write_incremental_checkpoint(
            workdir / f"{name.lower()}_comb.ckpt", bench, current, previous,
            criticality=result.variables, step=step, base_step=step - 1)

        # restart correctness: base full checkpoint of the previous step +
        # the combined delta must reproduce a verifiable run
        base = write_full_checkpoint(workdir / f"{name.lower()}_base.ckpt",
                                     bench, previous, step=step - 1)
        restored = restore_chain(bench, base.path, [combined.path])
        final = bench.run(restored, bench.total_steps - step)
        verified = bool(bench.verify(final))
        all_verified &= verified

        data[name] = {
            "full_nbytes": full.nbytes,
            "pruned_nbytes": pruned.nbytes,
            "incremental_nbytes": incremental.total_nbytes,
            "combined_nbytes": combined.total_nbytes,
            "verified": verified,
        }
        rows.append((name, format_bytes(full.nbytes),
                     format_bytes(pruned.nbytes),
                     format_bytes(incremental.total_nbytes),
                     format_bytes(combined.total_nbytes),
                     "PASSED" if verified else "FAILED"))

    text = format_table(
        ["Benchmark", "Full", "Pruned (paper)", "Incremental",
         "Incremental + pruned", "Chain restart verification"],
        rows,
        title="Extension: criticality pruning vs. element-level incremental "
              "checkpointing (per-step deltas, auxiliary files included)")
    text += ("\n\nincremental sizes depend on how much of the state one "
             "main-loop iteration rewrites (everything for CG, only the "
             "interior for BT/SP/LU, only the accumulators for FT); the "
             "combination never stores more than the plain delta, and beats "
             "pruning alone wherever an iteration rewrites only part of the "
             "state")
    if not all_verified:
        text += "\nWARNING: a delta-chain restart failed verification"

    return ExperimentReport(name="incremental", text=text, data=data,
                            matches_paper=all_verified)
