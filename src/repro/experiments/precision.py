"""Extension experiment -- impact-aware mixed-precision checkpointing.

The paper's future work ("using lower precision for uncritical or even those
elements that are of very low impact") implemented end to end:

1. reuse the AD analysis' per-element derivative magnitudes as *impact*
   scores;
2. build a **tolerance-driven** precision plan per benchmark: every element
   is stored at the cheapest tier (drop / half / single / double) such that
   the first-order bound on the output perturbation stays under an error
   budget (:func:`repro.core.impact.plan_precision_for_budget`);
3. **auto-tune the budget against the application's own verification**: the
   first-order bound targets the scalar output, but the NPB verification
   phases check several derived quantities against tight relative
   tolerances, so the planner walks a geometric ladder of budgets and keeps
   the largest one whose mixed-precision restart still passes verification
   (the ladder bottoms out at the plain pruned plan, which always passes);
4. for contrast, also report an **aggressive quantile plan** (lowest-impact
   quartile in half precision, next two quartiles in single) that ignores
   the tolerance -- it saves more bytes but breaks the strictest
   verifications, which is exactly why the tolerance-driven planner exists.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.ad import ops
from repro.ckpt.precision import (read_mixed_precision_checkpoint,
                                  write_mixed_precision_checkpoint)
from repro.ckpt.writer import write_pruned_checkpoint
from repro.core.impact import (estimate_roundoff_impact, plan_precision,
                               plan_precision_for_budget)
from repro.core.report import format_bytes, format_table

from .runner import ExperimentReport, ExperimentRunner

__all__ = ["DEFAULT_BENCHMARKS", "run"]


#: benchmarks used for the extension study (the ones with a non-trivial
#: floating-point payload)
DEFAULT_BENCHMARKS = ("BT", "SP", "MG", "CG", "LU", "FT")

#: starting fraction of (verification tolerance x output magnitude) granted
#: to the quantisation error budget
DEFAULT_BUDGET_FRACTION = 0.01

#: how many times the budget is divided by 10 before giving up and falling
#: back to the plain pruned plan
MAX_BUDGET_TRIALS = 5


def _restart_verification(bench, mixed_path) -> bool:
    """Restore a mixed-precision checkpoint, finish the run and verify."""
    loaded = read_mixed_precision_checkpoint(mixed_path)
    restored = loaded.materialize(bench.initial_state())
    final = bench.run(restored, bench.total_steps - loaded.step)
    return bool(bench.verify(final))


def _tune_budget(bench, result, workdir: Path, name: str,
                 budget_fraction: float):
    """Walk a geometric budget ladder until the restart verifies.

    Returns ``(plans, budget, written, verified, trials)`` for the first
    budget on the ladder whose mixed-precision restart passes the
    benchmark's verification; the last rung is budget 0 (pure pruning).
    """
    output_value = abs(float(ops.to_numpy(
        bench.restart_output(result.state))))
    epsilon = float(getattr(bench, "epsilon", 1.0e-8))
    base_budget = budget_fraction * epsilon * max(output_value, 1.0e-30)

    budgets = [base_budget / 10 ** k for k in range(MAX_BUDGET_TRIALS)]
    budgets.append(0.0)
    for trial, budget in enumerate(budgets, start=1):
        plans = plan_precision_for_budget(result.variables, result.state,
                                          budget)
        written = write_mixed_precision_checkpoint(
            workdir / f"{name.lower()}_mixed_t{trial}.ckpt", bench,
            result.state, plans, step=result.step)
        if _restart_verification(bench, written.path):
            return plans, budget, written, True, trial
    return plans, budget, written, False, len(budgets)  # pragma: no cover


def run(runner: ExperimentRunner | None = None,
        benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
        budget_fraction: float = DEFAULT_BUDGET_FRACTION,
        include_aggressive: bool = True,
        directory: str | Path | None = None) -> ExperimentReport:
    """Run the mixed-precision study; tolerance-driven restarts must verify."""
    runner = runner or ExperimentRunner()
    # batch the underlying analyses so a parallel runner fans them out once
    runner.prefetch(benchmarks)
    workdir = Path(directory) if directory is not None \
        else Path(tempfile.mkdtemp(prefix="repro_precision_"))

    rows = []
    data = {}
    all_verified = True
    for name in benchmarks:
        bench = runner.benchmark(name)
        result = runner.result(name)

        plans, budget, mixed, verified, trials = _tune_budget(
            bench, result, workdir, name, budget_fraction)
        bound = estimate_roundoff_impact(plans, result.variables,
                                         result.state)
        all_verified &= verified

        pruned = write_pruned_checkpoint(
            workdir / f"{name.lower()}_pruned.ckpt", bench, result.state,
            result.variables, step=result.step)

        aggressive_nbytes = None
        aggressive_verified = None
        if include_aggressive:
            aggressive_plans = plan_precision(result.variables)
            aggressive = write_mixed_precision_checkpoint(
                workdir / f"{name.lower()}_aggressive.ckpt", bench,
                result.state, aggressive_plans, step=result.step)
            aggressive_nbytes = aggressive.nbytes
            aggressive_verified = _restart_verification(bench,
                                                        aggressive.path)

        tier_counts = {tier: 0 for tier in range(4)}
        for plan in plans.values():
            for tier, count in plan.tier_counts().items():
                tier_counts[tier] += count

        data[name] = {
            "plans": plans,
            "budget": budget,
            "trials": trials,
            "roundoff_bound": bound,
            "verified": verified,
            "full_nbytes": result.full_nbytes,
            "pruned_nbytes": pruned.nbytes,
            "mixed_nbytes": mixed.nbytes,
            "tier_counts": tier_counts,
            "aggressive_nbytes": aggressive_nbytes,
            "aggressive_verified": aggressive_verified,
        }
        rows.append((
            name,
            format_bytes(result.full_nbytes),
            format_bytes(pruned.nbytes),
            format_bytes(mixed.nbytes),
            f"{100 * (1 - mixed.nbytes / max(result.full_nbytes, 1)):.1f}%",
            f"PASSED ({trials} trial{'s' if trials > 1 else ''})"
            if verified else "FAILED",
            "-" if aggressive_nbytes is None
            else format_bytes(aggressive_nbytes),
            "-" if aggressive_verified is None
            else ("PASSED" if aggressive_verified else "FAILED"),
        ))

    text = format_table(
        ["Benchmark", "Full", "Pruned", "Mixed (tuned)", "Mixed saved",
         "Verification", "Mixed (aggressive)", "Aggressive verif."],
        rows,
        title="Extension: impact-aware mixed-precision checkpoints "
              f"(budget ladder starting at {budget_fraction:g} x tolerance "
              "x output)")
    text += ("\n\nevery tuned mixed-precision restart passed its "
             "benchmark's own verification" if all_verified else
             "\n\nWARNING: a tuned restart failed verification even at a "
             "zero budget -- this should be impossible")
    if include_aggressive:
        text += ("\nthe aggressive quantile plan shows the storage ceiling "
                 "when the verification tolerance is ignored; where its "
                 "verification fails, the tolerance-driven planner is doing "
                 "its job")

    return ExperimentReport(name="precision", text=text, data=data,
                            matches_paper=all_verified)
