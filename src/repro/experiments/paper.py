"""The paper's reported numbers, as data.

Every experiment driver compares what this reproduction measures against the
values printed in the paper (Tables II and III and the figure descriptions),
so deviations are visible in one place.  See EXPERIMENTS.md for the
measured-vs-paper discussion.

Note on Table II: the paper's printed LU rows are internally inconsistent
with its own Table I shapes and prose (it lists ``rsd`` with 2028 elements
and ``rho_i`` with 10140, while Table I declares ``rsd[12][13][13][5]`` and
``rho_i[12][13][13]``).  The values recorded here follow the shapes of
Table I and the prose of Section IV-B: ``rho_i``/``qs`` have 300 of 2028
uncritical elements, ``rsd`` has 1500 of 10140 and ``u`` has 1628 of 10140.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE2_EXPECTED",
    "TABLE3_EXPECTED",
    "Table3Expectation",
    "TABLE2_BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "VERIFY_BENCHMARKS",
]


#: Table II -- (benchmark, variable) -> (uncritical, total)
TABLE2_EXPECTED: dict[tuple[str, str], tuple[int, int]] = {
    ("BT", "u"): (1500, 10140),
    ("SP", "u"): (1500, 10140),
    ("MG", "u"): (7176, 46480),
    ("MG", "r"): (10543, 46480),
    ("CG", "x"): (2, 1402),
    ("LU", "qs"): (300, 2028),
    ("LU", "rho_i"): (300, 2028),
    ("LU", "rsd"): (1500, 10140),
    ("LU", "u"): (1628, 10140),
    ("FT", "y"): (4096, 266240),
}


@dataclass(frozen=True)
class Table3Expectation:
    """One row of the paper's Table III.

    ``printed_saved_fraction`` is the percentage as printed in the paper;
    ``saved_fraction`` is the percentage *implied by the paper's own Table II
    element counts* (uncritical bytes over total variable bytes), which is
    what this reproduction compares against.  The two differ for LU (printed
    15.7 %, implied 15.3 %) and FT (printed 1 %, implied 1.5 %) because the
    paper derives the printed numbers from kilobyte figures rounded to three
    significant digits; see EXPERIMENTS.md.
    """

    original_kb: float
    optimized_kb: float
    printed_saved_fraction: float
    saved_fraction: float


#: Table III -- benchmark -> printed sizes and saved percentages
TABLE3_EXPECTED: dict[str, Table3Expectation] = {
    "BT": Table3Expectation(79.4, 67.7, 0.148, 0.148),
    "SP": Table3Expectation(79.4, 67.7, 0.148, 0.148),
    "MG": Table3Expectation(727.0, 588.0, 0.191, 0.191),
    "CG": Table3Expectation(10.9, 10.9, 0.001, 0.001),
    "LU": Table3Expectation(191.0, 161.0, 0.157, 0.153),
    "FT": Table3Expectation(4161.0, 4097.0, 0.01, 0.015),
}


#: benchmarks with Table II rows (those with uncritical elements)
TABLE2_BENCHMARKS = ("BT", "SP", "MG", "CG", "LU", "FT")

#: benchmarks with Table III rows
TABLE3_BENCHMARKS = ("BT", "SP", "MG", "CG", "LU", "FT")

#: benchmarks covered by the Section IV-C restart verification
VERIFY_BENCHMARKS = ("BT", "SP", "MG", "CG", "LU", "FT", "EP", "IS")
