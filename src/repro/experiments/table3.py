"""Table III -- checkpoint storage before/after eliminating uncritical
elements.

Two views are produced:

* the element-count storage model of :mod:`repro.core.report` (what the
  paper tabulates: checkpoint-file bytes, with the auxiliary region file
  accounted separately), and
* optionally the *measured* on-disk sizes obtained by actually writing full
  and pruned checkpoints with the homemade library
  (:func:`repro.ckpt.measure_checkpoint_storage`).

The comparison against the paper checks the saved-percentage column, which
is the quantity Table III is about; absolute kilobyte figures are also
reported (they match up to the paper's rounding).
"""

from __future__ import annotations

from pathlib import Path

from repro.ckpt.storage import measure_checkpoint_storage
from repro.core.report import format_bytes, format_table, storage_rows

from .paper import TABLE3_BENCHMARKS, TABLE3_EXPECTED
from .runner import ExperimentReport, ExperimentRunner

__all__ = ["run"]


#: tolerance on the saved-fraction comparison (the paper rounds to 0.1%)
SAVED_FRACTION_TOLERANCE = 0.002


def run(runner: ExperimentRunner | None = None,
        benchmarks: tuple[str, ...] = TABLE3_BENCHMARKS,
        measure_on_disk: bool = True,
        directory: str | Path | None = None) -> ExperimentReport:
    """Regenerate Table III and compare the saved fractions to the paper."""
    runner = runner or ExperimentRunner()
    criticality = runner.criticality(benchmarks)
    rows = storage_rows(criticality)

    measured = {}
    if measure_on_disk:
        # an explicit directory is a request for inspectable artefacts, so
        # the measurement checkpoints are kept there; the default measures
        # inside a self-removing tempdir (no stale files between runs)
        workdir = Path(directory) if directory is not None else None
        for name in benchmarks:
            result = runner.result(name)
            comparison = measure_checkpoint_storage(
                runner.benchmark(name), result, workdir,
                keep_files=workdir is not None)
            measured[name.upper()] = comparison

    comparisons: list[dict] = []
    mismatches: list[str] = []
    cells = []
    for row in rows:
        expected = TABLE3_EXPECTED.get(row.benchmark)
        entry = {
            "benchmark": row.benchmark,
            "original_nbytes": row.original_nbytes,
            "optimized_nbytes": row.optimized_nbytes,
            "aux_nbytes": row.aux_nbytes,
            "saved_fraction": row.saved_fraction,
            "paper_saved_fraction": expected.saved_fraction if expected
            else None,
        }
        disk = measured.get(row.benchmark)
        if disk is not None:
            entry["disk_full_nbytes"] = disk.full_nbytes
            entry["disk_pruned_nbytes"] = disk.pruned_nbytes
            entry["disk_saved_fraction"] = disk.saved_fraction
        comparisons.append(entry)
        if expected is not None and abs(
                row.saved_fraction - expected.saved_fraction) \
                > SAVED_FRACTION_TOLERANCE:
            mismatches.append(
                f"{row.benchmark}: measured {100 * row.saved_fraction:.1f}% "
                f"saved, paper reports "
                f"{100 * expected.saved_fraction:.1f}%")
        paper_cell = "-" if expected is None \
            else f"{100 * expected.saved_fraction:.1f}%"
        disk_cell = "-" if disk is None \
            else f"{100 * disk.saved_fraction:.1f}%"
        cells.append((row.benchmark, format_bytes(row.original_nbytes),
                      format_bytes(row.optimized_nbytes),
                      f"{100 * row.saved_fraction:.1f}%", paper_cell,
                      disk_cell))

    text = format_table(
        ["Benchmark", "Original", "Optimized", "Storage saved",
         "Paper saved", "On-disk saved"],
        cells, title="Table III: checkpointing storage")
    if mismatches:
        text += "\n\ndeviations from the paper:\n" + "\n".join(
            f"  {m}" for m in mismatches)
    else:
        text += ("\n\nevery saved-percentage matches the paper's Table III "
                 "within rounding")

    return ExperimentReport(
        name="table3",
        text=text,
        data={"rows": comparisons, "mismatches": mismatches},
        matches_paper=not mismatches,
    )
