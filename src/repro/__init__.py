"""repro -- reproduction of "Scrutinizing Variables for Checkpoint Using
Automatic Differentiation" (SC 2024).

The package is organised as layered subsystems (see DESIGN.md):

``repro.ad``
    Reverse-mode automatic differentiation engine over NumPy arrays (the
    Enzyme substitute), plus the tape-free forward-mode (JVP) tangent
    sweep, activity analysis and gradient checking.
``repro.npb``
    Python ports of the NAS Parallel Benchmarks kernels (BT, SP, LU, MG, CG,
    FT, EP, IS) at class-S layouts, restartable from an explicit state.
``repro.core``
    The paper's contribution: element-level criticality analysis of
    checkpoint variables, region encoding and reporting.
``repro.ckpt``
    The "homemade checkpointing library": pruned/full checkpoint files,
    auxiliary region files, restart and failure injection.
``repro.viz``
    Text-based visualisation of critical/uncritical distributions.
``repro.experiments``
    Drivers that regenerate every table and figure of the paper.
"""

from . import ad, ckpt, core, experiments, npb, viz
from .core import ScrutinyResult, scrutinize

__version__ = "1.8.0"

__all__ = [
    "ad",
    "core",
    "npb",
    "ckpt",
    "viz",
    "experiments",
    "scrutinize",
    "ScrutinyResult",
    "__version__",
]
