"""The paper's contribution: element-level checkpoint-variable scrutiny.

Layering (lowest first):

* :mod:`repro.core.variables` -- checkpoint-variable descriptions and the
  restartable-application protocol;
* :mod:`repro.core.regions` -- run-length encoding of critical regions (the
  auxiliary-file records);
* :mod:`repro.core.masks` -- criticality-mask statistics and decomposition;
* :mod:`repro.core.criticality` -- the AD / activity / rule analysis;
* :mod:`repro.core.impact` -- impact scores and mixed-precision planning
  (the paper's future-work extension);
* :mod:`repro.core.report` -- Table II / Table III row generation;
* :mod:`repro.core.analysis` -- the one-call ``scrutinize`` orchestration;
* :mod:`repro.core.store` -- persistent, content-addressed cache of
  scrutiny results (the disk half of the parallel scrutiny engine).

Typical use::

    from repro.core import scrutinize
    from repro.npb import registry

    result = scrutinize(registry.create("BT"))
    print(result.describe())
"""

from .analysis import ScrutinyResult, scrutinize
from .criticality import (CriticalityAnalyzer, VariableCriticality,
                          criticality_from_gradient, element_criticality)
from .impact import (PrecisionPlan, VariableImpact, plan_precision,
                     plan_precision_for_budget, variable_impact)
from .masks import MaskSummary, summarize_mask
from .regions import Region, decode_regions, encode_mask
from .store import ResultStore, cache_key
from .variables import (CheckpointVariable, RestartableApplication,
                        VariableKind, state_nbytes, validate_state)

__all__ = [
    "VariableImpact",
    "PrecisionPlan",
    "variable_impact",
    "plan_precision",
    "plan_precision_for_budget",
    "CheckpointVariable",
    "VariableKind",
    "RestartableApplication",
    "state_nbytes",
    "validate_state",
    "Region",
    "encode_mask",
    "decode_regions",
    "MaskSummary",
    "summarize_mask",
    "VariableCriticality",
    "CriticalityAnalyzer",
    "criticality_from_gradient",
    "element_criticality",
    "ScrutinyResult",
    "scrutinize",
    "ResultStore",
    "cache_key",
]
