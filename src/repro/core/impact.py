"""Impact scoring and precision planning (the paper's future work).

The conclusion of the paper: *"Our work ... potentially benefits to
accelerate applications by using lower precision for uncritical or even
those elements that are of very low impact in the future."*

The reverse sweep already produces, for free, the per-element derivative of
the output with respect to every checkpointed element -- not just its zero
pattern.  This module turns those magnitudes into a storage plan:

* :class:`VariableImpact` -- the per-element impact score of one variable
  (``|d output / d element|``, the first-order sensitivity of the output to
  a perturbation of the stored value);
* :class:`PrecisionPlan` -- a per-element storage tier (drop / half / single
  / double), built by thresholding the impact distribution;
* :func:`plan_precision` -- derive a plan for a whole
  :class:`~repro.core.analysis.ScrutinyResult`;
* :func:`estimate_roundoff_impact` -- a first-order bound on the output
  perturbation a plan's quantisation can introduce, so a plan can be checked
  against the application's verification tolerance *before* any checkpoint
  is written.

The storage side lives in :mod:`repro.ckpt.precision`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.criticality import VariableCriticality
from repro.core.variables import CheckpointVariable, VariableKind

__all__ = [
    "PRECISION_TIERS",
    "TIER_DTYPES",
    "TIER_DROP",
    "TIER_HALF",
    "TIER_SINGLE",
    "TIER_DOUBLE",
    "VariableImpact",
    "PrecisionPlan",
    "variable_impact",
    "plan_precision",
    "plan_precision_for_budget",
    "estimate_roundoff_impact",
]


#: storage tier codes, ordered from cheapest to most faithful
TIER_DROP = 0      #: not stored at all (uncritical elements)
TIER_HALF = 1      #: stored as IEEE half precision (2 bytes)
TIER_SINGLE = 2    #: stored as single precision (4 bytes)
TIER_DOUBLE = 3    #: stored in full double precision (8 bytes)

PRECISION_TIERS = (TIER_DROP, TIER_HALF, TIER_SINGLE, TIER_DOUBLE)

#: numpy storage dtype of each tier (TIER_DROP stores nothing)
TIER_DTYPES: dict[int, np.dtype] = {
    TIER_HALF: np.dtype(np.float16),
    TIER_SINGLE: np.dtype(np.float32),
    TIER_DOUBLE: np.dtype(np.float64),
}

#: unit roundoff of each storable tier (relative quantisation error bound)
_TIER_EPS = {
    TIER_HALF: 2.0 ** -11,
    TIER_SINGLE: 2.0 ** -24,
    TIER_DOUBLE: 0.0,
}


@dataclass
class VariableImpact:
    """Per-element impact of one checkpoint variable.

    ``impact[e] = |d output / d element e|`` evaluated at the checkpoint
    state; for dcomplex variables it is the maximum over the real and
    imaginary components.  Integer / rule-critical variables get an infinite
    impact (they must always be stored exactly).
    """

    variable: CheckpointVariable
    impact: np.ndarray

    def __post_init__(self) -> None:
        self.impact = np.asarray(self.impact, dtype=np.float64)
        if self.impact.shape != self.variable.shape:
            raise ValueError(
                f"impact shape {self.impact.shape} does not match variable "
                f"{self.variable.name!r} shape {self.variable.shape}")

    @property
    def name(self) -> str:
        """The variable's name."""
        return self.variable.name

    @property
    def max_impact(self) -> float:
        """Largest per-element impact (0 for an all-uncritical variable)."""
        finite = self.impact[np.isfinite(self.impact)]
        return float(finite.max()) if finite.size else float("inf")

    def nonzero_quantile(self, q: float) -> float:
        """Quantile of the nonzero, finite impact values."""
        finite = self.impact[np.isfinite(self.impact) & (self.impact > 0.0)]
        if finite.size == 0:
            return 0.0
        return float(np.quantile(finite, q))


@dataclass
class PrecisionPlan:
    """Per-element storage tiers for one variable.

    ``tiers`` holds one of the ``TIER_*`` codes per element.  The plan also
    records the impact thresholds it was derived from so reports can explain
    *why* an element landed in a tier.
    """

    variable: CheckpointVariable
    tiers: np.ndarray
    half_threshold: float = 0.0
    single_threshold: float = 0.0

    def __post_init__(self) -> None:
        self.tiers = np.asarray(self.tiers, dtype=np.int8)
        if self.tiers.shape != self.variable.shape:
            raise ValueError(
                f"tier shape {self.tiers.shape} does not match variable "
                f"{self.variable.name!r} shape {self.variable.shape}")
        unknown = set(np.unique(self.tiers)) - set(PRECISION_TIERS)
        if unknown:
            raise ValueError(f"unknown precision tiers {sorted(unknown)}")

    # -- per-tier views ----------------------------------------------------
    def tier_mask(self, tier: int) -> np.ndarray:
        """Boolean mask of the elements stored at ``tier``."""
        return self.tiers == tier

    def tier_counts(self) -> dict[int, int]:
        """Number of elements per tier (all tiers present, even if 0)."""
        return {tier: int(np.count_nonzero(self.tiers == tier))
                for tier in PRECISION_TIERS}

    # -- storage accounting --------------------------------------------------
    @property
    def components(self) -> int:
        """Float components per logical element (2 for dcomplex pairs)."""
        return 2 if self.variable.kind is VariableKind.COMPLEX_PAIR else 1

    @property
    def nbytes(self) -> int:
        """Payload bytes of the mixed-precision record of this variable."""
        counts = self.tier_counts()
        return self.components * sum(
            counts[tier] * TIER_DTYPES[tier].itemsize
            for tier in (TIER_HALF, TIER_SINGLE, TIER_DOUBLE))

    @property
    def full_nbytes(self) -> int:
        """Bytes of the conventional full-precision record."""
        return self.variable.nbytes

    @property
    def saved_fraction(self) -> float:
        """Fraction of the variable's bytes the plan saves."""
        if self.full_nbytes == 0:
            return 0.0
        return 1.0 - self.nbytes / self.full_nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        counts = self.tier_counts()
        return (f"PrecisionPlan({self.variable.name!r}, drop={counts[0]}, "
                f"half={counts[1]}, single={counts[2]}, double={counts[3]})")


def variable_impact(crit: VariableCriticality) -> VariableImpact:
    """Impact scores of one analysed variable.

    Rule-critical variables (integer data, loop counters) get infinite
    impact; AD-analysed variables get the absolute derivative, taking the
    element-wise maximum over the components of dcomplex pairs.
    """
    var = crit.variable
    if not crit.gradients:
        return VariableImpact(var, np.full(var.shape, np.inf))
    parts = [np.abs(np.asarray(crit.gradients[key], dtype=np.float64))
             for key in var.state_keys()]
    impact = parts[0]
    for part in parts[1:]:
        impact = np.maximum(impact, part)
    return VariableImpact(var, impact.reshape(var.shape))


def _plan_for_variable(crit: VariableCriticality,
                       impact: VariableImpact,
                       half_quantile: float,
                       single_quantile: float) -> PrecisionPlan:
    """Tier assignment for one variable from impact quantiles."""
    var = crit.variable
    if not crit.gradients:
        # rule-critical (integer) data is always stored exactly
        return PrecisionPlan(var, np.full(var.shape, TIER_DOUBLE,
                                          dtype=np.int8))
    half_threshold = impact.nonzero_quantile(half_quantile)
    single_threshold = impact.nonzero_quantile(single_quantile)
    tiers = np.full(var.shape, TIER_DOUBLE, dtype=np.int8)
    tiers[impact.impact <= single_threshold] = TIER_SINGLE
    tiers[impact.impact <= half_threshold] = TIER_HALF
    tiers[~crit.mask] = TIER_DROP
    return PrecisionPlan(var, tiers, half_threshold, single_threshold)


def plan_precision(criticality: Mapping[str, VariableCriticality],
                   half_quantile: float = 0.25,
                   single_quantile: float = 0.75
                   ) -> dict[str, PrecisionPlan]:
    """Build mixed-precision plans for every variable of an analysis.

    Parameters
    ----------
    criticality:
        ``ScrutinyResult.variables`` (the gradients recorded by the AD
        analysis supply the impact scores).
    half_quantile, single_quantile:
        Impact quantiles (over the nonzero impacts of each variable) below
        which elements are stored in half / single precision.  The defaults
        keep the top quartile in full double precision.
    """
    if not 0.0 <= half_quantile <= single_quantile <= 1.0:
        raise ValueError("quantiles must satisfy "
                         "0 <= half_quantile <= single_quantile <= 1")
    plans: dict[str, PrecisionPlan] = {}
    for name, crit in criticality.items():
        impact = variable_impact(crit)
        plans[name] = _plan_for_variable(crit, impact, half_quantile,
                                         single_quantile)
    return plans


def plan_precision_for_budget(criticality: Mapping[str, VariableCriticality],
                              state: Mapping[str, np.ndarray],
                              budget: float
                              ) -> dict[str, PrecisionPlan]:
    """Build plans whose first-order output perturbation stays under budget.

    The quantisation of element ``e`` at a tier with unit roundoff ``eps``
    contributes at most ``c_e * eps`` to the output, with
    ``c_e = |d output / d e| * |value_e|``.  The planner sorts all elements
    of all AD-analysed variables by ``c_e`` and greedily demotes the
    cheapest ones to half precision (spending at most half the budget), then
    to single precision (the other half); everything else stays in double.
    Uncritical elements are dropped as usual (their ``c_e`` is zero).

    Parameters
    ----------
    criticality:
        ``ScrutinyResult.variables``.
    state:
        The checkpoint state the plan will be applied to (element values
        enter the contribution bound).
    budget:
        Maximum admissible first-order output perturbation, in output units.
        A natural choice is a small fraction of the application's
        verification tolerance times its output magnitude.
    """
    if budget < 0.0:
        raise ValueError("budget must be non-negative")

    # gather per-element contributions across all planned variables
    entries: list[tuple[str, np.ndarray]] = []
    contributions: list[np.ndarray] = []
    for name, crit in criticality.items():
        if not crit.gradients:
            continue
        impact = variable_impact(crit).impact
        values = np.zeros(crit.variable.shape, dtype=np.float64)
        for key in crit.variable.state_keys():
            values = np.maximum(values,
                                np.abs(np.asarray(state[key],
                                                  dtype=np.float64)
                                       ).reshape(crit.variable.shape))
        contribution = np.where(crit.mask, impact * values, 0.0)
        entries.append((name, contribution))
        contributions.append(contribution.reshape(-1))

    plans: dict[str, PrecisionPlan] = {}
    if not entries:
        for name, crit in criticality.items():
            plans[name] = PrecisionPlan(
                crit.variable, np.full(crit.variable.shape, TIER_DOUBLE,
                                       dtype=np.int8))
        return plans

    all_contributions = np.concatenate(contributions)
    order = np.argsort(all_contributions, kind="stable")
    sorted_contrib = all_contributions[order]

    # spend half the budget on half-precision demotions, half on single
    half_budget = 0.5 * budget
    single_budget = 0.5 * budget
    cum_half = np.cumsum(sorted_contrib * _TIER_EPS[TIER_HALF])
    n_half = int(np.searchsorted(cum_half, half_budget, side="right"))
    remaining = sorted_contrib[n_half:]
    cum_single = np.cumsum(remaining * _TIER_EPS[TIER_SINGLE])
    n_single = int(np.searchsorted(cum_single, single_budget, side="right"))

    global_tiers = np.full(all_contributions.size, TIER_DOUBLE,
                           dtype=np.int8)
    global_tiers[order[:n_half]] = TIER_HALF
    global_tiers[order[n_half:n_half + n_single]] = TIER_SINGLE

    cursor = 0
    tier_by_name: dict[str, np.ndarray] = {}
    for name, contribution in entries:
        size = contribution.size
        tier_by_name[name] = global_tiers[cursor:cursor + size].reshape(
            contribution.shape).copy()
        cursor += size

    for name, crit in criticality.items():
        if name in tier_by_name:
            tiers = tier_by_name[name]
            tiers[~crit.mask] = TIER_DROP
            plans[name] = PrecisionPlan(crit.variable, tiers)
        else:
            plans[name] = PrecisionPlan(
                crit.variable, np.full(crit.variable.shape, TIER_DOUBLE,
                                       dtype=np.int8))
    return plans


def estimate_roundoff_impact(plans: Mapping[str, PrecisionPlan],
                             criticality: Mapping[str, VariableCriticality],
                             state: Mapping[str, np.ndarray]) -> float:
    """First-order bound on the output change the plan's quantisation causes.

    Storing element ``e`` (value ``v_e``) at a tier with unit roundoff
    ``eps`` perturbs it by at most ``|v_e| * eps``; to first order the output
    moves by at most ``sum_e |g_e| * |v_e| * eps_tier(e)``.  The bound lets a
    caller reject a plan whose quantisation could exceed the application's
    verification tolerance.
    """
    total = 0.0
    for name, plan in plans.items():
        crit = criticality.get(name)
        if crit is None or not crit.gradients:
            continue
        for key in plan.variable.state_keys():
            grad = np.abs(np.asarray(crit.gradients[key], dtype=np.float64)
                          ).reshape(plan.variable.shape)
            values = np.abs(np.asarray(state[key], dtype=np.float64)
                            ).reshape(plan.variable.shape)
            for tier, eps in _TIER_EPS.items():
                if eps == 0.0:
                    continue
                mask = plan.tier_mask(tier)
                if mask.any():
                    total += float(np.sum(grad[mask] * values[mask]) * eps)
    return total
