"""Criticality-mask utilities and statistics.

A *criticality mask* is a boolean array with the shape of a checkpoint
variable: ``True`` marks a critical element (the derivative of the output
with respect to it is nonzero, or it is critical by rule), ``False`` an
uncritical element that can be dropped from checkpoints.

This module holds the shape-aware helpers the reporting and visualisation
layers share: per-variable summaries (the numbers of the paper's Table II),
per-component decomposition of 4-D solution arrays (how Figure 3 and
Figure 7 are produced from ``u[12][13][13][5]``), and detection of fully
uncritical planes (the "elements at y = 12 and z = 12" observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "MaskSummary",
    "summarize_mask",
    "combine_or",
    "combine_and",
    "component_masks",
    "uncritical_planes",
    "mask_agreement",
    "as_mask",
]


@dataclass(frozen=True)
class MaskSummary:
    """Counts derived from one criticality mask (one Table II row)."""

    name: str
    total: int
    critical: int

    @property
    def uncritical(self) -> int:
        """Number of uncritical elements."""
        return self.total - self.critical

    @property
    def uncritical_rate(self) -> float:
        """Fraction of uncritical elements (0 for an empty variable)."""
        return self.uncritical / self.total if self.total else 0.0

    @property
    def critical_rate(self) -> float:
        """Fraction of critical elements."""
        return 1.0 - self.uncritical_rate if self.total else 0.0

    def __str__(self) -> str:
        return (f"{self.name}: {self.uncritical}/{self.total} uncritical "
                f"({100.0 * self.uncritical_rate:.1f}%)")


def as_mask(mask: np.ndarray) -> np.ndarray:
    """Coerce to a boolean array (shared validation point)."""
    return np.asarray(mask, dtype=bool)


def summarize_mask(name: str, mask: np.ndarray) -> MaskSummary:
    """Build the :class:`MaskSummary` of one variable's mask."""
    mask = as_mask(mask)
    return MaskSummary(name=name, total=int(mask.size),
                       critical=int(np.count_nonzero(mask)))


def combine_or(masks: Iterable[np.ndarray]) -> np.ndarray:
    """Element-wise OR of several same-shape masks.

    Used to merge the real/imaginary components of a ``dcomplex`` variable
    (an element is critical if either component is) and to union
    multi-probe results.
    """
    masks = [as_mask(m) for m in masks]
    if not masks:
        raise ValueError("combine_or needs at least one mask")
    out = masks[0].copy()
    for mask in masks[1:]:
        if mask.shape != out.shape:
            raise ValueError(f"mask shapes differ: {mask.shape} vs {out.shape}")
        out |= mask
    return out


def combine_and(masks: Iterable[np.ndarray]) -> np.ndarray:
    """Element-wise AND of several same-shape masks."""
    masks = [as_mask(m) for m in masks]
    if not masks:
        raise ValueError("combine_and needs at least one mask")
    out = masks[0].copy()
    for mask in masks[1:]:
        if mask.shape != out.shape:
            raise ValueError(f"mask shapes differ: {mask.shape} vs {out.shape}")
        out &= mask
    return out


def component_masks(mask: np.ndarray, axis: int = -1) -> list[np.ndarray]:
    """Split a mask along one axis into per-component sub-masks.

    The paper decomposes ``u[12][13][13][5]`` into five ``12x13x13`` cubes to
    visualise Figures 3 and 7; this helper produces those cubes for any
    variable with a trailing component dimension.
    """
    mask = as_mask(mask)
    return [np.take(mask, m, axis=axis) for m in range(mask.shape[axis])]


def uncritical_planes(mask: np.ndarray) -> dict[int, list[int]]:
    """Fully uncritical index planes per axis of a mask.

    Returns ``{axis: [index, ...]}`` listing every hyper-plane
    ``mask.take(index, axis)`` that contains no critical element -- e.g. the
    BT/SP result is ``{1: [12], 2: [12]}`` for the ``j == 12`` / ``i == 12``
    planes of the 12x13x13 component cubes.
    """
    mask = as_mask(mask)
    planes: dict[int, list[int]] = {}
    for axis in range(mask.ndim):
        axes = tuple(a for a in range(mask.ndim) if a != axis)
        fully_uncritical = ~mask.any(axis=axes)
        indices = np.flatnonzero(fully_uncritical)
        if indices.size:
            planes[axis] = [int(i) for i in indices]
    return planes


def mask_agreement(a: np.ndarray, b: np.ndarray) -> dict[str, int]:
    """Confusion counts between two masks over the same variable.

    Used by the ablation experiments to compare the AD mask against the
    activity-analysis mask: ``both_critical``, ``both_uncritical``,
    ``only_a`` (critical in ``a`` only) and ``only_b``.
    """
    a, b = as_mask(a), as_mask(b)
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")
    return {
        "both_critical": int(np.count_nonzero(a & b)),
        "both_uncritical": int(np.count_nonzero(~a & ~b)),
        "only_a": int(np.count_nonzero(a & ~b)),
        "only_b": int(np.count_nonzero(~a & b)),
    }
