"""End-to-end orchestration of the scrutiny analysis.

``scrutinize`` runs the paper's whole per-benchmark pipeline in one call:

1. run the benchmark to the requested checkpoint step and capture the state
   of its checkpoint variables;
2. run the criticality analysis (:mod:`repro.core.criticality`) on every
   variable;
3. package the masks, region encodings and storage accounting in a
   :class:`ScrutinyResult` the experiment drivers, the checkpoint library
   and the visualisation layer all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.criticality import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                                    DEFAULT_PROBE_SCALE,
                                    DEFAULT_SNAPSHOT_SCHEDULE,
                                    DEFAULT_TRACE_CACHE,
                                    CriticalityAnalyzer, VariableCriticality)
from repro.core.masks import MaskSummary
from repro.core.regions import Region
from repro.core.report import pruned_variable_nbytes

__all__ = ["ScrutinyResult", "scrutinize"]


@dataclass
class ScrutinyResult:
    """Outcome of the element-level analysis of one benchmark.

    Attributes
    ----------
    benchmark:
        Benchmark name ("BT", "MG", ...).
    problem_class:
        Problem class of the analysed run ("S" reproduces the paper).
    step:
        Main-loop index of the checkpoint the analysis is based on.
    method:
        Criticality method used ("ad", "tangent", "activity" or "rule").
    variables:
        Per-variable criticality, keyed by variable name in Table I order.
    state:
        The concrete checkpoint state the analysis was run on (kept so the
        checkpoint library can immediately write a pruned checkpoint of it).
    failure:
        ``None`` for a genuine analysis.  When the fault-tolerant engine
        gives up on a job (``on_failure="record"``) it returns a *failure
        marker* instead: an otherwise-empty result carrying the structured
        :class:`~repro.experiments.faults.JobFailure` here, so the batch
        completes and the caller can see exactly what was lost.  Failure
        markers are never persisted in the result store.
    """

    benchmark: str
    problem_class: str
    step: int
    method: str
    variables: dict[str, VariableCriticality]
    state: dict[str, Any] = field(default_factory=dict, repr=False)
    failure: Any = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """True for a real analysis, False for a failure marker."""
        return self.failure is None

    # -- per-variable views -----------------------------------------------
    def masks(self) -> dict[str, np.ndarray]:
        """Criticality masks keyed by variable name (True = critical)."""
        return {name: crit.mask for name, crit in self.variables.items()}

    def regions(self) -> dict[str, list[Region]]:
        """Critical-region encodings keyed by variable name."""
        return {name: crit.regions() for name, crit in self.variables.items()}

    def summaries(self) -> list[MaskSummary]:
        """Count summaries of every variable."""
        return [crit.summary() for crit in self.variables.values()]

    # -- aggregate counts ---------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Total number of checkpointed elements across all variables."""
        return sum(c.n_elements for c in self.variables.values())

    @property
    def n_uncritical(self) -> int:
        """Total number of uncritical elements across all variables."""
        return sum(c.n_uncritical for c in self.variables.values())

    @property
    def uncritical_rate(self) -> float:
        """Overall fraction of uncritical elements."""
        return self.n_uncritical / self.n_elements if self.n_elements else 0.0

    # -- storage model ------------------------------------------------------
    @property
    def full_nbytes(self) -> int:
        """Bytes of a conventional full checkpoint of all variables."""
        return sum(c.full_nbytes for c in self.variables.values())

    @property
    def pruned_nbytes(self) -> int:
        """Checkpoint-file bytes after pruning (critical element data only).

        The paper's Table III accounting: the auxiliary region file is stored
        separately and reported by :attr:`aux_nbytes`.
        """
        total = 0
        for crit in self.variables.values():
            if crit.n_uncritical == 0:
                total += crit.full_nbytes
            else:
                total += crit.critical_nbytes
        return total

    @property
    def aux_nbytes(self) -> int:
        """Bytes of the auxiliary region records of the pruned variables."""
        total = 0
        for crit in self.variables.values():
            if crit.n_uncritical:
                total += pruned_variable_nbytes(crit) - crit.critical_nbytes
        return total

    @property
    def pruned_total_nbytes(self) -> int:
        """Pruned checkpoint plus its auxiliary file (total on-disk cost)."""
        return self.pruned_nbytes + self.aux_nbytes

    @property
    def storage_saved_fraction(self) -> float:
        """Fraction of checkpoint-file storage the pruning saves (Table III)."""
        if self.full_nbytes == 0:
            return 0.0
        return 1.0 - self.pruned_nbytes / self.full_nbytes

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (no bulk arrays)."""
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "step": self.step,
            "method": self.method,
            "variables": {
                name: {
                    "shape": list(crit.variable.shape),
                    "kind": crit.variable.kind.value,
                    "total": crit.n_elements,
                    "critical": crit.n_critical,
                    "uncritical": crit.n_uncritical,
                    "uncritical_rate": crit.uncritical_rate,
                    "regions": [[r.start, r.stop] for r in crit.regions()],
                }
                for name, crit in self.variables.items()
            },
            "full_nbytes": self.full_nbytes,
            "pruned_nbytes": self.pruned_nbytes,
            "storage_saved_fraction": self.storage_saved_fraction,
        }

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        if self.failure is not None:
            return (f"{self.benchmark} (class {self.problem_class}), "
                    f"method {self.method!r}: ANALYSIS FAILED -- "
                    f"{self.failure.describe()}")
        lines = [f"{self.benchmark} (class {self.problem_class}), checkpoint "
                 f"at step {self.step}, method {self.method!r}"]
        for crit in self.variables.values():
            lines.append(f"  {crit.variable}: {crit.n_uncritical}/"
                         f"{crit.n_elements} uncritical "
                         f"({100.0 * crit.uncritical_rate:.1f}%)")
        lines.append(f"  checkpoint storage: {self.full_nbytes} -> "
                     f"{self.pruned_nbytes} bytes "
                     f"({100.0 * self.storage_saved_fraction:.1f}% saved)")
        return "\n".join(lines)


def scrutinize(bench, step: int | None = None,
               state: Mapping[str, Any] | None = None,
               method: str = "ad", n_probes: int = 1,
               steps: int | None = None,
               rng: np.random.Generator | None = None,
               sweep: str = "monolithic",
               probe_scale: float = DEFAULT_PROBE_SCALE,
               probe_batching: str = "batched",
               snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
               snapshot_budget: int | None = None,
               spill_dir: str | None = None,
               trace_cache: str = DEFAULT_TRACE_CACHE,
               plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
               executor: str = DEFAULT_EXECUTOR) -> ScrutinyResult:
    """Run the full element-level analysis of one benchmark.

    Parameters
    ----------
    bench:
        A benchmark instance (anything implementing
        :class:`~repro.core.variables.RestartableApplication`); use
        :func:`repro.npb.registry.create` for the paper's workloads.
    step:
        Checkpoint step the analysis is based on.  Defaults to the middle of
        the main loop (the result is step-independent for the paper's
        benchmarks -- see the property tests).
    state:
        Explicit checkpoint state; overrides ``step`` when given.
    method, n_probes, steps, rng, sweep, probe_scale, probe_batching, \
    snapshot_schedule, snapshot_budget, spill_dir, trace_cache, \
    plan_optimize, executor:
        Forwarded to :class:`~repro.core.criticality.CriticalityAnalyzer`;
        ``sweep="segmented"`` bounds the AD tape memory to one main-loop
        iteration (bitwise-identical masks), ``probe_batching="batched"``
        (the default) runs all probes from a single trace with an automatic
        per-probe fallback, ``probe_scale`` sets the relative magnitude
        of the probe perturbations, and ``snapshot_schedule`` (with
        ``snapshot_budget``/``spill_dir``) picks the segmented sweep's
        boundary-snapshot policy -- ``"all"``, ``"binomial"`` (O(log steps)
        resident snapshots) or ``"spill"`` (boundaries on disk), all with
        bitwise-identical masks.  ``trace_cache="plan"`` (the default)
        compiles each segmented step structure to a replay plan and
        replays it instead of re-tracing (:mod:`repro.ad.plan`);
        ``"off"`` re-traces every segment.  ``plan_optimize`` picks the
        plan lowering level (``"fuse"`` runs the pass pipeline of
        :mod:`repro.ad.passes`, ``"off"`` replays the raw instruction
        list) and ``executor`` the plan backend (``"interp"`` or
        ``"numba"`` with silent interpreter fallback); both require
        ``sweep="segmented"`` with ``trace_cache="plan"`` and both
        preserve bitwise-identical masks.  The sweep knobs apply to the
        ``"ad"`` *and* ``"activity"`` methods: a segmented activity
        analysis chains per-iteration read masks across boundaries
        (:func:`repro.ad.activity.segmented_read_masks`) with the same
        schedules and plan replay, bitwise-identical to the monolithic
        walk.
    """
    # ``analysis_step`` feeds the analyzer's per-analysis probe-rng
    # derivation: for an explicit state with no explicit step it stays
    # ``None`` so the analyzer derives the rng from the state's own step
    # counter -- exactly what a direct ``analyze(bench, state=...)`` call
    # does.  ``step`` itself only labels the result then.
    analysis_step = step
    if step is None:
        step = bench.total_steps // 2
    if state is None:
        state = bench.checkpoint_state(step)
        analysis_step = step
    else:
        state = dict(state)

    analyzer = CriticalityAnalyzer(method=method, n_probes=n_probes,
                                   steps=steps, rng=rng, sweep=sweep,
                                   probe_scale=probe_scale,
                                   probe_batching=probe_batching,
                                   snapshot_schedule=snapshot_schedule,
                                   snapshot_budget=snapshot_budget,
                                   spill_dir=spill_dir,
                                   trace_cache=trace_cache,
                                   plan_optimize=plan_optimize,
                                   executor=executor)
    variables = analyzer.analyze(bench, state=state, step=analysis_step)
    return ScrutinyResult(
        benchmark=bench.name,
        problem_class=str(getattr(bench.params, "problem_class", "S")),
        step=int(step),
        method=method,
        variables=variables,
        state=dict(state),
    )
