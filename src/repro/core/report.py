"""Reporting: uncritical-element counts and the checkpoint storage model.

Turns the per-variable criticality results into the two quantitative tables
of the paper:

* Table II -- number (and rate) of uncritical elements per checkpoint
  variable (:func:`uncritical_rows`);
* Table III -- checkpoint storage before/after eliminating uncritical
  elements (:func:`storage_rows`), using the same accounting as the
  homemade checkpoint library: a pruned checkpoint stores the critical
  elements' bytes plus the auxiliary file's (start, stop) records.

Formatting helpers render the rows as fixed-width text tables so the
experiment drivers, the CLI and the benchmark harness all print the same
thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.criticality import VariableCriticality
from repro.core.regions import aux_record_nbytes
from repro.core.variables import VariableKind

__all__ = [
    "UncriticalRow",
    "StorageRow",
    "uncritical_rows",
    "storage_rows",
    "format_table",
    "format_bytes",
]


@dataclass(frozen=True)
class UncriticalRow:
    """One row of the paper's Table II."""

    benchmark: str
    variable: str
    uncritical: int
    total: int

    @property
    def uncritical_rate(self) -> float:
        """Fraction of uncritical elements."""
        return self.uncritical / self.total if self.total else 0.0

    @property
    def label(self) -> str:
        """``Benchmark(variable)`` label as printed in the paper."""
        return f"{self.benchmark}({self.variable})"

    def as_cells(self) -> tuple[str, ...]:
        """Render the row for :func:`format_table`."""
        return (self.label, str(self.uncritical), str(self.total),
                f"{100.0 * self.uncritical_rate:.1f}%")


@dataclass(frozen=True)
class StorageRow:
    """One row of the paper's Table III.

    ``original_nbytes`` / ``optimized_nbytes`` are checkpoint-*file* bytes
    (element data), matching the paper's accounting; the auxiliary region
    file the pruned checkpoint needs for restart is reported separately in
    ``aux_nbytes`` because the paper stores it as a separate small file.
    """

    benchmark: str
    original_nbytes: int
    optimized_nbytes: int
    aux_nbytes: int = 0

    @property
    def saved_nbytes(self) -> int:
        """Checkpoint-file bytes saved by pruning."""
        return self.original_nbytes - self.optimized_nbytes

    @property
    def saved_fraction(self) -> float:
        """Fraction of checkpoint-file storage saved (the Table III cell)."""
        if self.original_nbytes == 0:
            return 0.0
        return self.saved_nbytes / self.original_nbytes

    @property
    def net_saved_fraction(self) -> float:
        """Saved fraction when the auxiliary file is charged as overhead."""
        if self.original_nbytes == 0:
            return 0.0
        return (self.saved_nbytes - self.aux_nbytes) / self.original_nbytes

    def as_cells(self) -> tuple[str, ...]:
        """Render the row for :func:`format_table`."""
        return (self.benchmark, format_bytes(self.original_nbytes),
                format_bytes(self.optimized_nbytes),
                f"{100.0 * self.saved_fraction:.1f}%")


def _array_float_variables(result: Mapping[str, VariableCriticality]
                           ) -> list[VariableCriticality]:
    """Non-scalar floating-point / dcomplex variables, in Table I order."""
    rows = []
    for crit in result.values():
        var = crit.variable
        if var.kind is VariableKind.INTEGER or var.is_scalar:
            continue
        rows.append(crit)
    return rows


def uncritical_rows(results: Mapping[str, Mapping[str, VariableCriticality]],
                    include_fully_critical: bool = False
                    ) -> list[UncriticalRow]:
    """Table II rows from per-benchmark criticality results.

    Parameters
    ----------
    results:
        ``{benchmark name: {variable name: VariableCriticality}}``.
    include_fully_critical:
        The paper's Table II only lists variables with at least one
        uncritical element; pass ``True`` to include the rest as well.
    """
    rows: list[UncriticalRow] = []
    for bench_name, variables in results.items():
        for crit in _array_float_variables(variables):
            if crit.n_uncritical == 0 and not include_fully_critical:
                continue
            rows.append(UncriticalRow(bench_name, crit.variable.name,
                                      crit.n_uncritical, crit.n_elements))
    return rows


def pruned_variable_nbytes(crit: VariableCriticality,
                           offset_nbytes: int = 8) -> int:
    """Pruned storage of one variable: critical elements + region records."""
    return crit.critical_nbytes + aux_record_nbytes(crit.regions(),
                                                    offset_nbytes)


def storage_rows(results: Mapping[str, Mapping[str, VariableCriticality]],
                 offset_nbytes: int = 8) -> list[StorageRow]:
    """Table III rows: full vs. pruned checkpoint bytes per benchmark.

    Every checkpoint variable contributes: floating-point variables are
    pruned to their critical regions, integer / rule-critical variables are
    stored in full (they are fully critical), exactly as the homemade
    checkpoint library writes them.  The checkpoint-file bytes exclude the
    auxiliary region file (the paper stores it separately); its size is
    reported in :attr:`StorageRow.aux_nbytes`.
    """
    rows: list[StorageRow] = []
    for bench_name, variables in results.items():
        original = 0
        optimized = 0
        aux = 0
        for crit in variables.values():
            original += crit.full_nbytes
            if crit.n_uncritical == 0:
                optimized += crit.full_nbytes
            else:
                optimized += crit.critical_nbytes
                aux += aux_record_nbytes(crit.regions(), offset_nbytes)
        rows.append(StorageRow(bench_name, original, optimized, aux))
    return rows


def format_bytes(nbytes: int) -> str:
    """Human-readable byte count in the paper's style (``79.4kb``)."""
    if nbytes < 1024:
        return f"{nbytes}b"
    if nbytes < 1024 ** 2:
        return f"{nbytes / 1024.0:.1f}kb"
    if nbytes < 1024 ** 3:
        return f"{nbytes / 1024.0 ** 2:.1f}Mb"
    return f"{nbytes / 1024.0 ** 3:.2f}Gb"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[str]],
                 title: str | None = None) -> str:
    """Fixed-width text rendering of a table."""
    str_rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)
