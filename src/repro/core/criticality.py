"""Element-level criticality analysis (the paper's core method).

Given a restartable application and the state captured at a checkpoint, the
analysis decides for every element of every checkpoint variable whether it
is *critical* (it influences the application output, so it must be saved) or
*uncritical* (zero influence, it can be dropped).  Four methods are
provided:

``"ad"`` (default, the paper's method)
    Trace the remaining computation from the checkpoint state with the
    reverse-mode AD engine and mark an element critical when the derivative
    of the scalar verification output with respect to it is nonzero.
    Optionally the derivative is probed at several perturbed base states and
    the nonzero masks are OR-ed (guards against coincidental zeros, see the
    ablation in DESIGN.md).

``"tangent"``
    The same derivative criterion computed with the forward-mode (JVP)
    tangent sweep (:mod:`repro.ad.tangent`): the benchmark's plain ``run``
    loop is executed on stacked-tangent state, one identity direction per
    watched element, recording **no tape** -- peak memory is one state,
    independent of the remaining loop length.  Shares the primitive rule
    tables with the reverse engine, so the masks match the ``"ad"`` masks
    bitwise (pinned for all eight NPB ports); cost grows with the number
    of watched elements instead of the loop length, so it wins for small
    states with long loops and many probes.  Supports ``n_probes`` exactly
    like ``"ad"``; the reverse-sweep knobs (``sweep``, snapshot schedules,
    ``probe_batching``, ``trace_cache``) do not apply and are ignored.

``"activity"``
    A read-dependency analysis over the same tape: an element is classified
    critical when it is read directly from the checkpointed variable by any
    primitive.  Cheaper and derivative-free, but only an approximation of
    criticality (see :mod:`repro.ad.activity`); provided as the baseline the
    ablation experiments compare the AD method against.  Honours the same
    sweep machinery as ``"ad"``: ``sweep="segmented"`` chains per-iteration
    read masks across boundaries (O(1-iteration) tape memory, every
    snapshot schedule) and ``trace_cache="plan"`` replays the analysis from
    compiled plan structure with no tracing at all -- all modes
    bitwise-identical to the monolithic tape walk.  Value-independent, so
    ``n_probes`` must stay 1 (probing cannot change a read set).

``"rule"``
    Classify every element of every variable critical.  This is the
    conservative baseline -- a conventional full checkpoint.

Integer variables and variables flagged ``critical_by_rule`` are always
fully critical, regardless of the method, mirroring the paper's manual
treatment of loop counters, keys and bucket pointers.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.ad import activity as activity_mod
from repro.ad import probes as probes_mod
from repro.ad.plan import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                           DEFAULT_TRACE_CACHE, EXECUTORS, PLAN_OPTIMIZES,
                           TRACE_CACHES, PlanCache)
from repro.ad.reverse import backward
from repro.ad.schedule import DEFAULT_SNAPSHOT_SCHEDULE, SNAPSHOT_SCHEDULES
from repro.ad.segmented import (cast_gradient, gradient_dtype,
                                segmented_gradients)
from repro.ad.tangent import tangent_gradients
from repro.ad.tensor import value_of
from repro.core.masks import MaskSummary, combine_or, summarize_mask
from repro.core.regions import Region, encode_mask
from repro.core.variables import CheckpointVariable, VariableKind

__all__ = [
    "METHODS",
    "SWEEPS",
    "PROBE_BATCHING",
    "SNAPSHOT_SCHEDULES",
    "DEFAULT_SNAPSHOT_SCHEDULE",
    "TRACE_CACHES",
    "DEFAULT_TRACE_CACHE",
    "DEFAULT_PROBE_SCALE",
    "VariableCriticality",
    "CriticalityAnalyzer",
    "criticality_from_gradient",
    "element_criticality",
]


#: recognised analysis methods
METHODS = ("ad", "tangent", "activity", "rule")

#: recognised reverse-sweep strategies for the AD method
SWEEPS = ("monolithic", "segmented")

#: recognised multi-probe execution strategies for the AD method
PROBE_BATCHING = ("batched", "per-probe")

#: default relative magnitude of the probe perturbations -- the single
#: source of truth for every layer (analyzer, scrutinize, runners, store
#: key, CLI); keyed into the result store, so changing it here invalidates
#: exactly the entries it should
DEFAULT_PROBE_SCALE = 1.0e-3

#: base seed of the per-analysis probe generators (and the legacy default)
_PROBE_SEED = 20241117


def criticality_from_gradient(gradient: np.ndarray) -> np.ndarray:
    """Boolean criticality mask from a derivative array.

    The paper's criterion verbatim: "if the derivative is 0, the impact of
    x on the output is 0; otherwise, there is impact on the output".
    Non-finite derivatives (the output blew up along that path) are treated
    as critical, the conservative choice.
    """
    gradient = np.asarray(gradient, dtype=np.float64)
    return (gradient != 0.0) | ~np.isfinite(gradient)


def element_criticality(fun: Callable[[np.ndarray], Any],
                        x: np.ndarray) -> np.ndarray:
    """Criticality mask of ``x`` for a free function ``fun(x) -> scalar``.

    Convenience entry point for user code that is not organised as an
    :class:`~repro.npb.base.NPBBenchmark`; used by the quickstart example.
    """
    from repro.ad.reverse import grad

    gradient = grad(fun)(np.asarray(x, dtype=np.float64))
    return criticality_from_gradient(gradient)


@dataclass
class VariableCriticality:
    """Per-element criticality of one checkpoint variable.

    Attributes
    ----------
    variable:
        The static :class:`~repro.core.variables.CheckpointVariable`.
    mask:
        Boolean array of the variable's logical shape; ``True`` = critical.
    method:
        The analysis method that produced the mask.
    gradients:
        Per-state-key derivative arrays (empty for rule-based variables);
        kept so visualisation and debugging can inspect magnitudes, not just
        the zero pattern.
    """

    variable: CheckpointVariable
    mask: np.ndarray
    method: str = "ad"
    gradients: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.mask.shape != self.variable.shape:
            raise ValueError(
                f"mask shape {self.mask.shape} does not match variable "
                f"{self.variable.name!r} shape {self.variable.shape}")

    # -- counts ----------------------------------------------------------
    @property
    def name(self) -> str:
        """The variable's name."""
        return self.variable.name

    @property
    def n_elements(self) -> int:
        """Total number of logical elements."""
        return self.variable.n_elements

    @property
    def n_critical(self) -> int:
        """Number of critical elements."""
        return int(np.count_nonzero(self.mask))

    @property
    def n_uncritical(self) -> int:
        """Number of uncritical elements."""
        return self.n_elements - self.n_critical

    @property
    def uncritical_rate(self) -> float:
        """Fraction of uncritical elements (a Table II cell)."""
        return self.n_uncritical / self.n_elements if self.n_elements else 0.0

    def summary(self) -> MaskSummary:
        """Count summary of the mask."""
        return summarize_mask(self.variable.name, self.mask)

    # -- storage views ---------------------------------------------------
    def regions(self) -> list[Region]:
        """Contiguous critical runs over the flattened element index."""
        return encode_mask(self.mask)

    @property
    def critical_nbytes(self) -> int:
        """Bytes of element data a pruned checkpoint stores."""
        return self.n_critical * self.variable.element_nbytes

    @property
    def full_nbytes(self) -> int:
        """Bytes of element data a full checkpoint stores."""
        return self.variable.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"VariableCriticality({self.variable.name!r}, "
                f"critical={self.n_critical}/{self.n_elements}, "
                f"method={self.method!r})")


class CriticalityAnalyzer:
    """Runs the element-level analysis for one or more benchmarks.

    Parameters
    ----------
    method:
        ``"ad"``, ``"tangent"``, ``"activity"`` or ``"rule"`` (see module
        docstring).
    n_probes:
        Number of AD evaluations per variable; probe 0 uses the checkpoint
        state itself (the paper's method), further probes perturb the
        floating-point state to separate structural zeros from coincidental
        ones.  Ignored by the other methods.
    probe_scale:
        Relative magnitude of the probe perturbations.
    rng:
        Explicit generator used *statefully* for probe perturbations (legacy
        behaviour: the caller owns the stream, so reuse across analyses is
        order-dependent).  ``None`` (the default) derives a fresh,
        deterministic generator per :meth:`analyze` call from the benchmark
        name, problem class and checkpoint step, so a reused sequential
        analyzer is guaranteed to produce exactly what a fresh analyzer (the
        parallel engine's fresh-per-job path) produces.
    steps:
        Number of remaining main-loop iterations to analyse; ``None`` means
        every iteration left until the benchmark completes (the paper's
        setting: criticality with respect to the final output).
    sweep:
        Reverse-sweep strategy of the AD and activity methods:
        ``"monolithic"`` (one tape for the whole remaining computation, the
        default) or ``"segmented"`` (:mod:`repro.ad.segmented` for "ad",
        :func:`repro.ad.activity.segmented_read_masks` for "activity" --
        one iteration's tape at a time, peak memory bounded by a single
        iteration, bitwise-identical masks).  Ignored by the "tangent" and
        "rule" methods.
    snapshot_schedule:
        Boundary-snapshot retention policy of the segmented sweep
        (:mod:`repro.ad.schedule`): ``"all"`` (default) keeps every
        boundary in memory, ``"binomial"`` keeps O(log steps) and
        recomputes the rest (revolve-style), ``"spill"`` round-trips the
        boundaries through the :mod:`repro.ckpt` writer/reader so only one
        snapshot is resident.  All three produce bitwise-identical masks;
        ignored unless ``sweep="segmented"``.
    snapshot_budget:
        In-memory snapshot budget of the ``"binomial"`` schedule (``None``
        = ~log2(steps)); ignored by the other schedules.
    spill_dir:
        Parent directory of the ``"spill"`` schedule's per-sweep scratch
        directory (``None`` = system temp dir); the scratch directory is
        always removed, on success and on failure.
    probe_batching:
        How ``n_probes > 1`` AD evaluations are executed: ``"batched"``
        (the default) stacks all probe states along a leading probe axis
        and runs **one** traced forward plus **one** reverse sweep
        (:mod:`repro.ad.probes`), falling back automatically -- with a
        :class:`RuntimeWarning` -- for benchmarks whose kernels cannot
        broadcast over the probe axis; ``"per-probe"`` forces the legacy
        one-trace-per-probe loop.  Both produce identical masks (pinned in
        ``tests/ad/test_probes.py``); ignored when ``n_probes == 1``.
    trace_cache:
        Trace-specialisation policy of the segmented sweep
        (:mod:`repro.ad.plan`): ``"plan"`` (default) records each step
        structure once, compiles it to a replay plan and replays it for
        further segments, probes and forward refills -- bitwise-identical
        gradients and masks, no repeated tracing; ``"off"`` re-traces
        every segment (the pre-plan behaviour, and the escape hatch for
        kernels with state-dependent traced structure).  One plan cache is
        shared per :meth:`analyze` call, so the per-probe loop replays
        plans learned by earlier probes.  Applies to the "ad" and
        "activity" methods with ``sweep="segmented"``; ignored by the
        monolithic sweep and the "tangent"/"rule" methods.
    plan_optimize:
        Optimisation level applied when a recorded step is lowered to a
        replay plan (:mod:`repro.ad.passes`): ``"fuse"`` (default) runs
        the full pass pipeline -- elementwise/unary chain fusion,
        dead-slot elimination, liveness-driven arena packing -- and
        ``"off"`` replays the raw instruction list one op at a time.
        Both produce bitwise-identical gradients and masks (pinned in
        ``tests/ad/test_passes.py``); requires ``sweep="segmented"`` and
        ``trace_cache="plan"``.
    executor:
        Backend that runs the lowered plan (:mod:`repro.ad.exec`):
        ``"interp"`` (default) interprets the instruction stream with
        preallocated output buffers, ``"numba"`` JIT-compiles eligible
        fused chains when numba is importable and silently falls back to
        the interpreter otherwise.  Requires ``sweep="segmented"`` and
        ``trace_cache="plan"``.
    """

    def __init__(self, method: str = "ad", n_probes: int = 1,
                 probe_scale: float = DEFAULT_PROBE_SCALE,
                 rng: np.random.Generator | None = None,
                 steps: int | None = None,
                 sweep: str = "monolithic",
                 probe_batching: str = "batched",
                 snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
                 snapshot_budget: int | None = None,
                 spill_dir: str | None = None,
                 trace_cache: str = DEFAULT_TRACE_CACHE,
                 plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
                 executor: str = DEFAULT_EXECUTOR) -> None:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
        if n_probes < 1:
            raise ValueError("n_probes must be at least 1")
        if method == "activity" and int(n_probes) != 1:
            # the read set depends only on the traced structure, never on
            # the state values, so probing cannot change the masks; raising
            # beats silently charging for sweeps that prove nothing
            raise ValueError("method='activity' is value-independent; "
                             "n_probes must be 1")
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}; choose from {SWEEPS}")
        if probe_batching not in PROBE_BATCHING:
            raise ValueError(f"unknown probe_batching {probe_batching!r}; "
                             f"choose from {PROBE_BATCHING}")
        if snapshot_schedule not in SNAPSHOT_SCHEDULES:
            raise ValueError(f"unknown snapshot_schedule "
                             f"{snapshot_schedule!r}; choose from "
                             f"{SNAPSHOT_SCHEDULES}")
        if snapshot_budget is not None and int(snapshot_budget) < 2:
            raise ValueError("snapshot_budget must be at least 2")
        if trace_cache not in TRACE_CACHES:
            raise ValueError(f"unknown trace_cache {trace_cache!r}; "
                             f"choose from {TRACE_CACHES}")
        if trace_cache != DEFAULT_TRACE_CACHE and sweep != "segmented":
            # the monolithic sweep never replays; accepting the flag there
            # would do nothing while still forking the result-cache key
            raise ValueError("trace_cache='off' only affects "
                             "sweep='segmented'")
        if plan_optimize not in PLAN_OPTIMIZES:
            raise ValueError(f"unknown plan_optimize {plan_optimize!r}; "
                             f"choose from {PLAN_OPTIMIZES}")
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; "
                             f"choose from {EXECUTORS}")
        # plan_optimize/executor configure the compiled replay plans, which
        # only exist under the segmented sweep's "plan" trace cache; a
        # non-default value anywhere else would be silently ignored while
        # still forking the result-cache key
        if plan_optimize != DEFAULT_PLAN_OPTIMIZE and (
                sweep != "segmented" or trace_cache != "plan"):
            raise ValueError("plan_optimize='off' requires sweep='segmented' "
                             "and trace_cache='plan'")
        if executor != DEFAULT_EXECUTOR and (
                sweep != "segmented" or trace_cache != "plan"):
            raise ValueError(f"executor={executor!r} requires "
                             "sweep='segmented' and trace_cache='plan'")
        # inapplicable knobs would be silently ignored by the sweep while
        # still forking the result-cache key (the CLI repeats these checks
        # for a friendlier argparse error); every entry point -- scrutinize,
        # ScrutinyJob, ExperimentRunner -- inherits them from here
        if sweep != "segmented" and (snapshot_schedule
                                     != DEFAULT_SNAPSHOT_SCHEDULE
                                     or snapshot_budget is not None
                                     or spill_dir is not None):
            raise ValueError("snapshot_schedule/snapshot_budget/spill_dir "
                             "require sweep='segmented'")
        if snapshot_budget is not None and snapshot_schedule != "binomial":
            raise ValueError("snapshot_budget requires "
                             "snapshot_schedule='binomial'")
        if spill_dir is not None and snapshot_schedule != "spill":
            raise ValueError("spill_dir requires snapshot_schedule='spill'")
        self.method = method
        self.n_probes = int(n_probes)
        self.probe_scale = float(probe_scale)
        self.rng = rng
        self.steps = steps
        self.sweep = sweep
        self.probe_batching = probe_batching
        self.snapshot_schedule = snapshot_schedule
        self.snapshot_budget = None if snapshot_budget is None \
            else int(snapshot_budget)
        self.spill_dir = spill_dir
        self.trace_cache = trace_cache
        self.plan_optimize = plan_optimize
        self.executor = executor

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def analyze(self, bench, state: Mapping[str, Any] | None = None,
                step: int | None = None) -> dict[str, VariableCriticality]:
        """Analyse every checkpoint variable of ``bench``.

        Either an explicit checkpoint ``state`` or a checkpoint ``step`` (the
        state is then produced by running the benchmark that far) must be
        provided; ``step`` defaults to the middle of the main loop.

        Returns a dict keyed by variable name, in Table I order.
        """
        if state is None:
            if step is None:
                step = bench.total_steps // 2
            state = bench.checkpoint_state(step)
        variables = list(bench.checkpoint_variables())

        results: dict[str, VariableCriticality] = {}
        rule_vars = [v for v in variables
                     if v.critical_by_rule or v.kind is VariableKind.INTEGER]
        ad_vars = [v for v in variables if v not in rule_vars]

        for var in rule_vars:
            results[var.name] = VariableCriticality(
                var, np.ones(var.shape, dtype=bool), method="rule")

        if ad_vars:
            if self.method == "rule":
                for var in ad_vars:
                    results[var.name] = VariableCriticality(
                        var, np.ones(var.shape, dtype=bool), method="rule")
            elif self.method == "activity":
                results.update(self._activity_masks(bench, state, ad_vars))
            elif self.method == "tangent":
                rng = self.rng if self.rng is not None \
                    else self._analysis_rng(bench, state, step)
                results.update(self._tangent_masks(bench, state, ad_vars,
                                                   rng))
            else:
                rng = self.rng if self.rng is not None \
                    else self._analysis_rng(bench, state, step)
                results.update(self._ad_masks(bench, state, ad_vars, rng))

        # preserve Table I ordering
        return {v.name: results[v.name] for v in variables}

    def _analysis_rng(self, bench, state: Mapping[str, Any],
                      step: int | None) -> np.random.Generator:
        """Deterministic per-analysis probe generator.

        Seeded from the benchmark identity (name, problem class) and the
        checkpoint step, so the draws depend only on *what* is analysed --
        never on what the same analyzer instance analysed before.  A reused
        sequential analyzer therefore matches the parallel engine's
        fresh-analyzer-per-job path bit for bit.
        """
        if step is None:
            step = self._state_step(bench, state)
        tag = "|".join([
            str(getattr(bench, "name", type(bench).__name__)),
            str(getattr(getattr(bench, "params", None), "problem_class", "")),
            str(step),
        ]).encode("utf-8")
        digest = hashlib.sha256(tag).digest()
        words = [int.from_bytes(digest[i:i + 4], "little")
                 for i in range(0, 16, 4)]
        return np.random.default_rng(
            np.random.SeedSequence([_PROBE_SEED, *words]))

    @staticmethod
    def _state_step(bench, state: Mapping[str, Any]) -> int:
        """Step counter carried by ``state``, or ``-1`` when undiscoverable."""
        step_variable = getattr(bench, "step_variable", None)
        if callable(step_variable):
            try:
                name = step_variable()
                if name is not None and name in state:
                    return int(value_of(state[name]))
            except Exception:
                pass
        return -1

    # ------------------------------------------------------------------
    # AD method
    # ------------------------------------------------------------------
    def _watched_keys(self, variables: Sequence[CheckpointVariable]) -> list[str]:
        keys: list[str] = []
        for var in variables:
            keys.extend(var.state_keys())
        return keys

    def _ad_masks(self, bench, state: Mapping[str, Any],
                  variables: Sequence[CheckpointVariable],
                  rng: np.random.Generator
                  ) -> dict[str, VariableCriticality]:
        watch = self._watched_keys(variables)
        # all probe states are drawn up front (base state first); the draw
        # order over (probe, key) is identical to the legacy interleaved
        # loop, so masks are unchanged for any probe_batching choice
        states = [dict(state)]
        for probe in range(1, self.n_probes):
            states.append(self._perturb_state(state, watch, probe, rng))

        # one replay-plan cache per analysis: every segmented sweep of this
        # analysis (all probes, batched or per-probe) shares the compiled
        # plans, which is where trace-once/replay-many pays off
        plan_cache = PlanCache(plan_optimize=self.plan_optimize,
                               executor=self.executor) \
            if (self.trace_cache == "plan"
                and self.sweep == "segmented") else None

        stacked = None
        if self.probe_batching == "batched" and len(states) > 1:
            stacked = self._batched_probe_gradients(bench, states, watch,
                                                    plan_cache)

        if stacked is not None:
            base_grads = {key: np.asarray(stacked[key][0]) for key in watch}
            key_masks = {key: criticality_from_gradient(stacked[key])
                         .any(axis=0) for key in watch}
        else:
            base_grads = self._gradients(bench, states[0], watch, plan_cache)
            key_masks = {key: criticality_from_gradient(g)
                         for key, g in base_grads.items()}
            for probed_state in states[1:]:
                probe_grads = self._gradients(bench, probed_state, watch,
                                              plan_cache)
                for key, g in probe_grads.items():
                    key_masks[key] |= criticality_from_gradient(g)

        results: dict[str, VariableCriticality] = {}
        for var in variables:
            parts = [key_masks[key] for key in var.state_keys()]
            mask = combine_or(parts) if len(parts) > 1 else parts[0]
            gradients = {key: base_grads[key] for key in var.state_keys()}
            results[var.name] = VariableCriticality(
                var, mask.reshape(var.shape), method="ad",
                gradients=gradients)
        return results

    # ------------------------------------------------------------------
    # tangent (forward-mode) method
    # ------------------------------------------------------------------
    def _tangent_masks(self, bench, state: Mapping[str, Any],
                       variables: Sequence[CheckpointVariable],
                       rng: np.random.Generator
                       ) -> dict[str, VariableCriticality]:
        """Forward-mode twin of :meth:`_ad_masks`.

        Probe states are drawn in the exact same ``(probe, key)`` order with
        the same generator, so an OR-of-probes tangent analysis perturbs the
        state identically to the reverse methods; each probe then runs one
        tape-free JVP sweep instead of a reverse sweep.
        """
        watch = self._watched_keys(variables)
        states = [dict(state)]
        for probe in range(1, self.n_probes):
            states.append(self._perturb_state(state, watch, probe, rng))

        base_grads = tangent_gradients(bench, states[0], watch=list(watch),
                                       steps=self.steps)
        key_masks = {key: criticality_from_gradient(g)
                     for key, g in base_grads.items()}
        for probed_state in states[1:]:
            probe_grads = tangent_gradients(bench, probed_state,
                                            watch=list(watch),
                                            steps=self.steps)
            for key, g in probe_grads.items():
                key_masks[key] |= criticality_from_gradient(g)

        results: dict[str, VariableCriticality] = {}
        for var in variables:
            parts = [key_masks[key] for key in var.state_keys()]
            mask = combine_or(parts) if len(parts) > 1 else parts[0]
            gradients = {key: base_grads[key] for key in var.state_keys()}
            results[var.name] = VariableCriticality(
                var, mask.reshape(var.shape), method="tangent",
                gradients=gradients)
        return results

    def _batched_probe_gradients(self, bench, states: Sequence[Mapping[str, Any]],
                                 watch: Sequence[str],
                                 plan_cache: PlanCache | None = None
                                 ) -> dict[str, np.ndarray] | None:
        """Stacked ``(n_probes,) + shape`` gradients, or ``None`` to fall
        back to the per-probe loop when the benchmark cannot broadcast.

        A benchmark that simply does not expose the probe-tracing API (a
        custom :class:`RestartableApplication`) falls back silently; a
        kernel that *fails* mid-trace falls back with a
        :class:`RuntimeWarning` so the slowdown is explainable.
        """
        hooks = ("traced_step_probes", "traced_output_probes") \
            if self.sweep == "segmented" else ("traced_restart_probes",)
        if not all(callable(getattr(bench, hook, None)) for hook in hooks):
            return None
        try:
            if self.sweep == "segmented":
                return probes_mod.segmented_batched_gradients(
                    bench, states, watch=list(watch), steps=self.steps,
                    snapshot_schedule=self.snapshot_schedule,
                    snapshot_budget=self.snapshot_budget,
                    spill_dir=self.spill_dir,
                    trace_cache=self.trace_cache, plan_cache=plan_cache)
            return probes_mod.batched_gradients(bench, states,
                                                watch=list(watch),
                                                steps=self.steps)
        except Exception as exc:  # noqa: BLE001 - any kernel may refuse to
            # broadcast over the probe axis; the per-probe path is always
            # available and produces identical masks.  Spill-schedule
            # failures (unwritable spill dir, corrupted spill file) all
            # surface as CheckpointFormatError -- the schedule wraps its
            # I/O errors -- and are *not* broadcast problems: the per-probe
            # path would hit them too, so re-raise instead of recomputing
            # everything just to fail again.  Any other error -- including
            # an OSError/ENOMEM only at the stacked batch size -- falls
            # back to the per-probe loop.
            from repro.ckpt.format import CheckpointFormatError

            if isinstance(exc, CheckpointFormatError):
                raise
            warnings.warn(
                f"batched probe sweep unavailable for "
                f"{getattr(bench, 'name', bench)!r} "
                f"({type(exc).__name__}: {exc}); falling back to the "
                f"per-probe path", RuntimeWarning, stacklevel=3)
            return None

    def _gradients(self, bench, state: Mapping[str, Any],
                   watch: Sequence[str],
                   plan_cache: PlanCache | None = None
                   ) -> dict[str, np.ndarray]:
        """One reverse sweep: derivative of the output w.r.t. every key.

        ``sweep="monolithic"`` traces the whole remaining computation on one
        tape; ``sweep="segmented"`` chains per-iteration tapes instead
        (bitwise-identical result, peak memory bounded by one iteration).
        """
        if self.sweep == "segmented":
            return segmented_gradients(bench, state, watch=list(watch),
                                       steps=self.steps,
                                       snapshot_schedule=self.snapshot_schedule,
                                       snapshot_budget=self.snapshot_budget,
                                       spill_dir=self.spill_dir,
                                       trace_cache=self.trace_cache,
                                       plan_cache=plan_cache)
        tape, leaves, output = bench.traced_restart(state, watch=list(watch),
                                                    steps=self.steps)
        keys = list(leaves)
        grads = backward(tape, output, [leaves[k] for k in keys],
                         strict=False)
        # same dtype contract as the segmented sweep: each gradient reports
        # in its state entry's declared floating dtype, never upcast
        return {key: cast_gradient(g, gradient_dtype(state[key]))
                for key, g in zip(keys, grads)}

    def _perturb_state(self, state: Mapping[str, Any],
                       watch: Sequence[str], probe: int,
                       rng: np.random.Generator) -> dict[str, Any]:
        """Perturbed copy of the floating-point checkpoint state.

        Every perturbed entry keeps the original entry's dtype: a float32
        variable must be probed *as* float32, or the probe sweeps would
        trace at a different precision than probe 0 (the base state).
        The noise itself is drawn and scaled in float64 (identical draws to
        earlier versions) and cast once at the end.
        """
        del probe  # each call draws fresh noise from the generator
        perturbed = dict(state)
        for key in watch:
            original = np.asarray(value_of(state[key]))
            base = np.asarray(original, dtype=np.float64)
            rms = float(np.sqrt(np.mean(base ** 2)))
            scale = self.probe_scale * (rms if rms > 0 else 1.0)
            probed = base + scale * rng.standard_normal(base.shape)
            dtype = original.dtype \
                if np.issubdtype(original.dtype, np.floating) else np.float64
            perturbed[key] = probed.astype(dtype, copy=False)
        return perturbed

    # ------------------------------------------------------------------
    # activity method
    # ------------------------------------------------------------------
    def _activity_masks(self, bench, state: Mapping[str, Any],
                        variables: Sequence[CheckpointVariable]
                        ) -> dict[str, VariableCriticality]:
        watch = self._watched_keys(variables)
        if self.sweep == "segmented":
            # the same sweep machinery as _ad_masks: one iteration's tape
            # (or compiled transfer) at a time, chained across boundaries;
            # a fresh per-analysis plan cache keeps repeated analyses of
            # one analyzer honest about what each call costs
            plan_cache = PlanCache(plan_optimize=self.plan_optimize,
                                   executor=self.executor) \
                if self.trace_cache == "plan" else None
            activity = activity_mod.segmented_read_masks(
                bench, state, watch=list(watch), steps=self.steps,
                snapshot_schedule=self.snapshot_schedule,
                snapshot_budget=self.snapshot_budget,
                spill_dir=self.spill_dir,
                trace_cache=self.trace_cache,
                plan_cache=plan_cache)
            key_masks = {key: activity[key].read for key in watch}
        else:
            tape, leaves, _output = bench.traced_restart(
                state, watch=list(watch), steps=self.steps)
            keys = list(leaves)
            results_by_key = activity_mod.read_masks(
                tape, [leaves[k] for k in keys])
            key_masks = {key: res.read
                         for key, res in zip(keys, results_by_key)}

        results: dict[str, VariableCriticality] = {}
        for var in variables:
            parts = [key_masks[key] for key in var.state_keys()]
            mask = combine_or(parts) if len(parts) > 1 else parts[0]
            results[var.name] = VariableCriticality(
                var, mask.reshape(var.shape), method="activity")
        return results
