"""Run-length encoding of critical regions.

The paper's auxiliary file "only records the start and end locations of the
region of continuous critical elements" (Section III-B).  This module is the
in-memory form of that encoding: a critical/uncritical boolean mask over the
*flattened* element index space of a variable is converted to a list of
half-open ``[start, stop)`` :class:`Region` runs and back.

The encoding is what makes pruned checkpoints cheap: for the patterns the
paper observes (whole padded planes, a contiguous tail, a repetitive stripe
pattern) the number of runs is tiny compared to the number of elements, so
the auxiliary file overhead is negligible next to the element data saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Region",
    "encode_mask",
    "decode_regions",
    "n_elements",
    "validate_regions",
    "merge_regions",
    "regions_to_array",
    "regions_from_array",
    "invert_regions",
    "aux_record_nbytes",
]


@dataclass(frozen=True, order=True)
class Region:
    """A half-open run ``[start, stop)`` of flat element indices."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid region [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop

    def overlaps(self, other: "Region") -> bool:
        """True when the two runs share at least one element."""
        return self.start < other.stop and other.start < self.stop

    def as_slice(self) -> slice:
        """The equivalent ``slice`` over a flattened array."""
        return slice(self.start, self.stop)


def encode_mask(mask: np.ndarray) -> list[Region]:
    """Encode the ``True`` runs of a boolean mask (any shape, C order).

    Returns the maximal runs in increasing index order.  An all-``False``
    mask encodes to an empty list; an all-``True`` mask to a single run.
    """
    flat = np.asarray(mask, dtype=bool).reshape(-1)
    if flat.size == 0:
        return []
    # boundaries where the mask value changes
    padded = np.concatenate(([False], flat, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    return [Region(int(a), int(b)) for a, b in zip(starts, stops)]


def decode_regions(regions: Iterable[Region], size: int) -> np.ndarray:
    """Inverse of :func:`encode_mask`: a flat boolean mask of length ``size``."""
    mask = np.zeros(int(size), dtype=bool)
    for region in regions:
        if region.stop > size:
            raise ValueError(
                f"region [{region.start}, {region.stop}) exceeds size {size}")
        mask[region.start:region.stop] = True
    return mask


def n_elements(regions: Iterable[Region]) -> int:
    """Total number of elements covered by the runs."""
    return sum(len(r) for r in regions)


def validate_regions(regions: Sequence[Region], size: int | None = None) -> None:
    """Raise ``ValueError`` unless the runs are sorted, disjoint and in range."""
    previous_stop = -1
    for region in regions:
        if region.start <= previous_stop - 1 and previous_stop >= 0:
            raise ValueError(f"regions overlap or are unsorted near "
                             f"[{region.start}, {region.stop})")
        if region.start < previous_stop:
            raise ValueError(f"regions overlap near [{region.start}, "
                             f"{region.stop})")
        previous_stop = region.stop
        if size is not None and region.stop > size:
            raise ValueError(f"region [{region.start}, {region.stop}) exceeds "
                             f"size {size}")


def merge_regions(regions: Iterable[Region]) -> list[Region]:
    """Sort the runs and merge any that touch or overlap."""
    ordered = sorted(regions)
    merged: list[Region] = []
    for region in ordered:
        if merged and region.start <= merged[-1].stop:
            last = merged[-1]
            merged[-1] = Region(last.start, max(last.stop, region.stop))
        else:
            merged.append(region)
    return merged


def invert_regions(regions: Sequence[Region], size: int) -> list[Region]:
    """Runs covering exactly the elements *not* covered by ``regions``."""
    validate_regions(regions, size)
    inverted: list[Region] = []
    cursor = 0
    for region in regions:
        if region.start > cursor:
            inverted.append(Region(cursor, region.start))
        cursor = region.stop
    if cursor < size:
        inverted.append(Region(cursor, size))
    return inverted


def regions_to_array(regions: Sequence[Region]) -> np.ndarray:
    """Pack the runs into an ``(n, 2)`` int64 array (for serialisation)."""
    if not regions:
        return np.zeros((0, 2), dtype=np.int64)
    return np.array([(r.start, r.stop) for r in regions], dtype=np.int64)


def regions_from_array(array: np.ndarray) -> list[Region]:
    """Inverse of :func:`regions_to_array`."""
    array = np.asarray(array, dtype=np.int64).reshape(-1, 2)
    return [Region(int(a), int(b)) for a, b in array]


def aux_record_nbytes(regions: Sequence[Region],
                      offset_nbytes: int = 8) -> int:
    """Bytes needed to record the runs as (start, stop) offset pairs.

    This is the in-memory storage model of the auxiliary file the paper
    describes; :mod:`repro.ckpt.auxfile` adds a small fixed header on disk.
    """
    return 2 * offset_nbytes * len(regions)
