"""Persistent, content-addressed store of scrutiny results.

Re-running the AD sweep for every table/figure regeneration is the dominant
cost of the experiment drivers, yet the result of a sweep is a pure function
of (benchmark, problem class, method, n_probes, checkpoint step, analysed
steps) and the package version.  :class:`ResultStore` caches
:class:`~repro.core.analysis.ScrutinyResult` objects on disk under a key
derived from exactly those parameters, so a warm cache regenerates every
artefact without a single AD sweep.

On-disk layout
--------------

Each cached result is a pair of files under the store root, grouped by
benchmark for human navigation::

    <root>/
        <BENCHMARK>/
            <key>.json    # metadata: key params, variable specs, state types
            <key>.npz     # bulk arrays: masks, gradients, checkpoint state

``<key>`` is the first 20 hex digits of the SHA-256 of the canonical JSON
encoding of the key parameters -- content-addressed, so two stores built
with the same package version agree on addresses and a parameter change
(method, n_probes, version bump, ...) can never alias an old entry.  The
sweep knobs (``sweep``, ``snapshot_schedule``/``snapshot_budget``,
``trace_cache``, and since repro 1.7.0 ``plan_optimize``/``executor``)
key *every* method they apply to -- since repro 1.6.0 that includes
``method="activity"``, whose entries from earlier versions (when those
knobs were silently ignored) are invalidated by the version field rather
than aliased.

The ``.npz`` member names are namespaced:

=====================  ====================================================
member                 content
=====================  ====================================================
``mask::<var>``        boolean criticality mask of variable ``<var>``
``grad::<var>::<k>``   derivative array of state key ``<k>`` of ``<var>``
``state::<k>``         checkpoint-state entry ``<k>``
=====================  ====================================================

The JSON file is written *after* the ``.npz`` (both atomically via a
temporary file and ``os.replace``), so its presence marks a complete entry;
a torn write leaves at worst an orphaned ``.npz`` that is never read.
Corrupt or partially deleted entries load as cache misses, never as errors.

Corruption detection: the metadata records the SHA-256 of the ``.npz``
bytes (``digest``), verified on every load, so silent bit rot is caught
even when the zip container still parses.  A corrupt entry (digest
mismatch, torn zip, bad JSON, an orphaned half of the pair) is counted in
:attr:`ResultStore.corrupt_entries`, reported once per store instance via
a single :class:`RuntimeWarning`, and *quarantined*: both files are
renamed aside to ``<name>.corrupt-<n>`` -- content preserved for
post-mortem -- so the entry re-misses cleanly (and is recomputed) instead
of failing the same way forever.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.analysis import ScrutinyResult
from repro.core.criticality import (DEFAULT_EXECUTOR, DEFAULT_PLAN_OPTIMIZE,
                                    DEFAULT_PROBE_SCALE,
                                    DEFAULT_SNAPSHOT_SCHEDULE,
                                    DEFAULT_TRACE_CACHE,
                                    VariableCriticality)
from repro.core.variables import CheckpointVariable, VariableKind

__all__ = ["ResultStore", "cache_key"]

#: bump when the serialisation layout changes incompatibly
_FORMAT = 1


class _CorruptEntryError(RuntimeError):
    """Internal marker: an entry's content failed digest verification."""


def _package_version() -> str:
    # imported lazily: repro/__init__ imports repro.core, which imports this
    # module, so a top-level ``from repro import __version__`` would cycle
    import repro

    return repro.__version__


def cache_key(*, benchmark: str, problem_class: str, method: str,
              n_probes: int, step: int | None = None,
              steps: int | None = None, sweep: str = "monolithic",
              probe_scale: float = DEFAULT_PROBE_SCALE,
              probe_batching: str = "batched",
              snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
              snapshot_budget: int | None = None,
              trace_cache: str = DEFAULT_TRACE_CACHE,
              plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
              executor: str = DEFAULT_EXECUTOR,
              version: str | None = None) -> str:
    """Content address of one analysis configuration.

    ``step``/``steps`` of ``None`` mean the benchmark defaults (mid-run
    checkpoint, analyse to completion) and key as such; they are resolved
    deterministically from the other parameters, so the defaults never
    alias an explicit value.  ``sweep``, ``probe_batching`` and
    ``snapshot_schedule``/``snapshot_budget`` are part of the key even
    though the alternative strategies produce identical masks: keeping the
    entries separate lets the equivalence be *checked* from cached
    artefacts rather than assumed.  ``probe_scale`` is keyed via its
    shortest-round-trip ``repr``, so two runs with different perturbation
    magnitudes can never alias the same entry (they probe genuinely
    different base states).  The spill scratch directory is deliberately
    *not* keyed: it is transient storage, not analysis identity.
    """
    payload = {
        "format": _FORMAT,
        "benchmark": str(benchmark).upper(),
        "problem_class": str(problem_class),
        "method": str(method),
        "n_probes": int(n_probes),
        "probe_scale": float(probe_scale),
        "probe_batching": str(probe_batching),
        "snapshot_schedule": str(snapshot_schedule),
        "snapshot_budget": None if snapshot_budget is None
        else int(snapshot_budget),
        "trace_cache": str(trace_cache),
        "plan_optimize": str(plan_optimize),
        "executor": str(executor),
        "step": None if step is None else int(step),
        "steps": None if steps is None else int(steps),
        "sweep": str(sweep),
        "version": version if version is not None else _package_version(),
    }
    blob = json.dumps(payload, sort_keys=True).encode("ascii")
    return hashlib.sha256(blob).hexdigest()[:20]


def _state_tag(value: Any) -> str:
    """Type tag restoring a state entry to its original Python type."""
    if isinstance(value, np.ndarray):
        return "array"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, np.generic):
        return "npscalar"
    return "array"


def _restore_state(value: np.ndarray, tag: str) -> Any:
    if tag == "array":
        return value
    if tag == "bool":
        return bool(value)
    if tag == "int":
        return int(value)
    if tag == "float":
        return float(value)
    if tag == "npscalar":
        return value[()]
    raise ValueError(f"unknown state tag {tag!r}")


class ResultStore:
    """On-disk cache of :class:`ScrutinyResult` objects (see module docs).

    Parameters
    ----------
    root:
        Directory holding the cache (created on first save).
    version:
        Package version baked into every key; defaults to the installed
        :data:`repro.__version__`, so upgrading the package invalidates the
        whole cache without deleting a byte.
    """

    def __init__(self, root: str | Path,
                 version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else _package_version()
        #: cache-efficiency counters (observable by tests and the CLI)
        self.hits = 0
        self.misses = 0
        #: corrupt entries detected (and quarantined) by :meth:`load`
        self.corrupt_entries = 0
        #: rename-aside destinations of every quarantined file
        self.quarantined_paths: list[Path] = []
        self._warned_corrupt = False

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key(self, *, benchmark: str, problem_class: str, method: str,
            n_probes: int, step: int | None = None,
            steps: int | None = None, sweep: str = "monolithic",
            probe_scale: float = DEFAULT_PROBE_SCALE,
            probe_batching: str = "batched",
            snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
            snapshot_budget: int | None = None,
            trace_cache: str = DEFAULT_TRACE_CACHE,
            plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
            executor: str = DEFAULT_EXECUTOR) -> str:
        """Cache key of one analysis configuration under this store."""
        return cache_key(benchmark=benchmark, problem_class=problem_class,
                         method=method, n_probes=n_probes, step=step,
                         steps=steps, sweep=sweep, probe_scale=probe_scale,
                         probe_batching=probe_batching,
                         snapshot_schedule=snapshot_schedule,
                         snapshot_budget=snapshot_budget,
                         trace_cache=trace_cache,
                         plan_optimize=plan_optimize,
                         executor=executor,
                         version=self.version)

    def _paths(self, benchmark: str, key: str) -> tuple[Path, Path]:
        directory = self.root / str(benchmark).upper()
        return directory / f"{key}.json", directory / f"{key}.npz"

    def contains(self, benchmark: str, key: str) -> bool:
        """True when a complete entry exists for ``key``."""
        meta_path, data_path = self._paths(benchmark, key)
        return meta_path.is_file() and data_path.is_file()

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(self, key: str, result: ScrutinyResult) -> Path:
        """Persist ``result`` under ``key``; returns the metadata path."""
        if getattr(result, "failure", None) is not None:
            raise ValueError(
                "refusing to cache a failure-marker result "
                f"({result.failure.describe()}); only genuine analyses "
                "belong in the store")
        meta_path, data_path = self._paths(result.benchmark, key)
        meta_path.parent.mkdir(parents=True, exist_ok=True)

        arrays: dict[str, np.ndarray] = {}
        variables_meta: list[dict[str, Any]] = []
        for name, crit in result.variables.items():
            arrays[f"mask::{name}"] = crit.mask
            for state_key, grad in crit.gradients.items():
                arrays[f"grad::{name}::{state_key}"] = np.asarray(grad)
            var = crit.variable
            variables_meta.append({
                "name": var.name,
                "shape": list(var.shape),
                "kind": var.kind.value,
                "dtype": var.dtype.str,
                "critical_by_rule": var.critical_by_rule,
                "description": var.description,
                "method": crit.method,
                "gradient_keys": list(crit.gradients),
            })

        state_meta: dict[str, str] = {}
        for state_key, value in result.state.items():
            state_meta[state_key] = _state_tag(value)
            arrays[f"state::{state_key}"] = np.asarray(value)

        self._write_atomic(data_path, lambda fh: np.savez(fh, **arrays))
        meta = {
            "format": _FORMAT,
            "key": key,
            "benchmark": result.benchmark,
            "problem_class": result.problem_class,
            "step": result.step,
            "method": result.method,
            # content digest of the array file, verified on every load --
            # catches silent bit rot the zip container would tolerate
            "digest": hashlib.sha256(data_path.read_bytes()).hexdigest(),
            "variables": variables_meta,
            "state": state_meta,
        }
        self._write_atomic(
            meta_path,
            lambda fh: fh.write(json.dumps(meta, indent=1).encode("ascii")))
        return meta_path

    @staticmethod
    def _write_atomic(path: Path, write) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, benchmark: str, key: str) -> ScrutinyResult | None:
        """The cached result under ``key``, or ``None`` on a miss.

        Corrupt entries (torn writes, digest mismatches, stray files)
        count as misses -- a cache must never be able to fail a run -- but
        not *silent* misses: each one bumps :attr:`corrupt_entries`, the
        first raises a single :class:`RuntimeWarning`, and the damaged
        files are renamed aside (content preserved for post-mortem) so the
        key re-misses cleanly and is recomputed.  An absent entry or a
        format/version bump stays a plain, uncounted miss.
        """
        meta_path, data_path = self._paths(benchmark, key)
        if not meta_path.exists():
            # never written (or only an orphaned .npz from a torn save,
            # which the write ordering makes unreadable by design)
            self.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != _FORMAT:
                self.misses += 1
                return None
            raw = data_path.read_bytes()
            digest = meta.get("digest")
            if digest is not None \
                    and hashlib.sha256(raw).hexdigest() != digest:
                raise _CorruptEntryError(
                    f"array-file digest mismatch for {data_path}")
            with np.load(io.BytesIO(raw)) as data:
                result = self._reconstruct(meta, data)
        except Exception as exc:
            # torn zip members, bad JSON, missing arrays, shape drift,
            # digest mismatch, ... -- every corruption mode is a miss,
            # never an error; but it is counted, warned about once and
            # the wreckage quarantined for post-mortem
            self._quarantine_entry(benchmark, key, exc)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine_entry(self, benchmark: str, key: str,
                          exc: Exception) -> None:
        """Move a corrupt entry's files aside and account for it."""
        self.corrupt_entries += 1
        meta_path, data_path = self._paths(benchmark, key)
        for path in (meta_path, data_path):
            if not path.exists():
                continue
            for counter in range(10000):
                aside = path.with_name(f"{path.name}.corrupt-{counter}")
                if not aside.exists():
                    break
            try:
                os.replace(path, aside)
                self.quarantined_paths.append(aside)
            except OSError:  # pragma: no cover - read-only store
                pass
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"result store {self.root}: corrupt cache entry "
                f"{benchmark}/{key} quarantined ({type(exc).__name__}: "
                f"{exc}); it will be recomputed -- further corrupt "
                f"entries are counted in ResultStore.corrupt_entries "
                f"without repeating this warning", RuntimeWarning,
                stacklevel=3)

    @staticmethod
    def _reconstruct(meta: Mapping[str, Any], data) -> ScrutinyResult:
        variables: dict[str, VariableCriticality] = {}
        for spec in meta["variables"]:
            var = CheckpointVariable(
                name=spec["name"],
                shape=tuple(spec["shape"]),
                kind=VariableKind(spec["kind"]),
                dtype=np.dtype(spec["dtype"]),
                critical_by_rule=bool(spec["critical_by_rule"]),
                description=spec["description"],
            )
            gradients = {state_key: data[f"grad::{var.name}::{state_key}"]
                         for state_key in spec["gradient_keys"]}
            variables[var.name] = VariableCriticality(
                var, data[f"mask::{var.name}"], method=spec["method"],
                gradients=gradients)

        state = {state_key: _restore_state(data[f"state::{state_key}"], tag)
                 for state_key, tag in meta["state"].items()}

        return ScrutinyResult(
            benchmark=meta["benchmark"],
            problem_class=meta["problem_class"],
            step=int(meta["step"]),
            method=meta["method"],
            variables=variables,
            state=state,
        )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def fetch(self, *, benchmark: str, problem_class: str, method: str,
              n_probes: int, step: int | None = None,
              steps: int | None = None,
              sweep: str = "monolithic",
              probe_scale: float = DEFAULT_PROBE_SCALE,
              probe_batching: str = "batched",
              snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
              snapshot_budget: int | None = None,
              trace_cache: str = DEFAULT_TRACE_CACHE,
              plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
              executor: str = DEFAULT_EXECUTOR
              ) -> ScrutinyResult | None:
        """``load`` keyed directly by analysis parameters."""
        key = self.key(benchmark=benchmark, problem_class=problem_class,
                       method=method, n_probes=n_probes, step=step,
                       steps=steps, sweep=sweep, probe_scale=probe_scale,
                       probe_batching=probe_batching,
                       snapshot_schedule=snapshot_schedule,
                       snapshot_budget=snapshot_budget,
                       trace_cache=trace_cache,
                       plan_optimize=plan_optimize,
                       executor=executor)
        return self.load(benchmark, key)

    def put(self, result: ScrutinyResult, *, n_probes: int,
            step: int | None = None, steps: int | None = None,
            sweep: str = "monolithic",
            probe_scale: float = DEFAULT_PROBE_SCALE,
            probe_batching: str = "batched",
            snapshot_schedule: str = DEFAULT_SNAPSHOT_SCHEDULE,
            snapshot_budget: int | None = None,
            trace_cache: str = DEFAULT_TRACE_CACHE,
            plan_optimize: str = DEFAULT_PLAN_OPTIMIZE,
            executor: str = DEFAULT_EXECUTOR) -> Path:
        """``save`` keyed by the parameters that produced ``result``.

        ``step`` is the *requested* checkpoint step (``None`` for the
        mid-run default), not the resolved ``result.step``, so lookups with
        the default keep hitting.
        """
        key = self.key(benchmark=result.benchmark,
                       problem_class=result.problem_class,
                       method=result.method, n_probes=n_probes, step=step,
                       steps=steps, sweep=sweep, probe_scale=probe_scale,
                       probe_batching=probe_batching,
                       snapshot_schedule=snapshot_schedule,
                       snapshot_budget=snapshot_budget,
                       trace_cache=trace_cache,
                       plan_optimize=plan_optimize,
                       executor=executor)
        self.save(key, result)
        return self._paths(result.benchmark, key)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ResultStore({str(self.root)!r}, version={self.version!r}, "
                f"hits={self.hits}, misses={self.misses})")
