"""Checkpoint variable specifications and the restartable-application protocol.

The paper's unit of analysis is a *variable necessary for checkpointing*
(Table I): a named array or scalar that must be saved so the application can
restart from the latest checkpoint.  This module defines

* :class:`VariableKind` -- how a variable is treated by the analysis
  (differentiable floating point data, paired real/imaginary floating point
  data standing in for the NPB ``dcomplex`` struct, or integer data that is
  classified by rules rather than derivatives);
* :class:`CheckpointVariable` -- the static description of one such variable;
* :class:`RestartableApplication` -- the protocol every NPB port implements
  so the criticality analysis, the checkpoint library and the experiment
  drivers can treat all benchmarks uniformly.

It intentionally has no dependencies on the rest of :mod:`repro.core` so the
application layer (:mod:`repro.npb`) can import it without creating an
import cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "VariableKind",
    "CheckpointVariable",
    "RestartableApplication",
    "state_nbytes",
    "validate_state",
]


class VariableKind(enum.Enum):
    """How the criticality analysis should treat a checkpoint variable."""

    #: floating point array or scalar; criticality from AD derivatives
    FLOAT = "float"

    #: pair of floating point arrays (``<name>_re`` / ``<name>_im`` in the
    #: state dict) representing the NPB ``dcomplex`` struct; an element is
    #: critical if either component is critical
    COMPLEX_PAIR = "complex_pair"

    #: integer array or scalar (loop counters, keys, bucket pointers);
    #: reverse-mode AD does not apply, criticality comes from rules
    INTEGER = "integer"


@dataclass(frozen=True)
class CheckpointVariable:
    """Static description of one variable necessary for checkpointing.

    Parameters
    ----------
    name:
        The variable's name as it appears in the application's state dict
        (and in the paper's Table I).
    shape:
        Logical element shape.  For :attr:`VariableKind.COMPLEX_PAIR` this is
        the shape in *dcomplex elements*; the state dict stores two float
        arrays of this shape.
    kind:
        How the analysis treats the variable.
    dtype:
        Storage dtype of one component (``float64`` for floats and complex
        pairs, an integer dtype for integers).
    critical_by_rule:
        Force-classify every element as critical without AD.  Used for loop
        indices and the integer data of EP/IS, mirroring the paper's manual
        treatment ("its impact is obvious as the index variable of a
        for-loop").
    description:
        One-line human description (used in reports and Table I output).
    """

    name: str
    shape: tuple[int, ...]
    kind: VariableKind = VariableKind.FLOAT
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    critical_by_rule: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    # -- sizes -----------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Number of logical elements (dcomplex counts as one element)."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def element_nbytes(self) -> int:
        """Bytes per logical element (16 for a dcomplex pair)."""
        if self.kind is VariableKind.COMPLEX_PAIR:
            return 2 * self.dtype.itemsize
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total bytes of the variable when checkpointed in full."""
        return self.n_elements * self.element_nbytes

    @property
    def is_scalar(self) -> bool:
        """True for 0-dimensional variables (loop counters, accumulators)."""
        return self.shape == ()

    # -- state-dict helpers -----------------------------------------------
    def state_keys(self) -> tuple[str, ...]:
        """Keys under which this variable's data lives in a state dict."""
        if self.kind is VariableKind.COMPLEX_PAIR:
            return (f"{self.name}_re", f"{self.name}_im")
        return (self.name,)

    def extract(self, state: Mapping[str, Any]) -> list[np.ndarray]:
        """Pull this variable's concrete component arrays out of ``state``."""
        arrays = []
        for key in self.state_keys():
            if key not in state:
                raise KeyError(f"state is missing component {key!r} of "
                               f"variable {self.name!r}")
            arrays.append(np.asarray(state[key]))
        return arrays

    def __str__(self) -> str:
        dims = "" if self.is_scalar else \
            "[" + "][".join(str(s) for s in self.shape) + "]"
        type_name = {"float": "double", "complex_pair": "dcomplex",
                     "integer": "int"}[self.kind.value]
        return f"{type_name} {self.name}{dims}"


@runtime_checkable
class RestartableApplication(Protocol):
    """Protocol implemented by every NPB port (see :mod:`repro.npb.base`).

    The criticality analysis only needs four capabilities: know the
    checkpoint variables, produce the state at a checkpoint step, run the
    remaining computation from a given state to the scalar verification
    output, and verify a final result.
    """

    #: short benchmark name (``"BT"``, ``"MG"``, ...)
    name: str

    def checkpoint_variables(self) -> Sequence[CheckpointVariable]:
        """Variables necessary for checkpointing (the paper's Table I)."""
        ...

    def initial_state(self) -> dict[str, Any]:
        """State dict at step 0 (before any main-loop iteration)."""
        ...

    def run(self, state: Mapping[str, Any], steps: int) -> dict[str, Any]:
        """Advance ``state`` by ``steps`` main-loop iterations."""
        ...

    def output(self, state: Mapping[str, Any]):
        """Scalar verification output computed from a (possibly traced) state."""
        ...

    def verify(self, state: Mapping[str, Any]) -> bool:
        """Benchmark's own verification phase on a concrete final state."""
        ...


def state_nbytes(variables: Sequence[CheckpointVariable]) -> int:
    """Total checkpoint size, in bytes, of a set of variables saved in full."""
    return sum(v.nbytes for v in variables)


def validate_state(variables: Sequence[CheckpointVariable],
                   state: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` if ``state`` is missing or mis-shapes a variable."""
    problems: list[str] = []
    for var in variables:
        for key in var.state_keys():
            if key not in state:
                problems.append(f"missing state entry {key!r}")
                continue
            arr = np.asarray(state[key])
            if var.is_scalar:
                if arr.shape not in ((), (1,)):
                    problems.append(
                        f"{key!r}: expected scalar, got shape {arr.shape}")
            elif tuple(arr.shape) != var.shape:
                problems.append(
                    f"{key!r}: expected shape {var.shape}, got {arr.shape}")
    if problems:
        raise ValueError("invalid state: " + "; ".join(problems))
