"""Figure 7 -- critical/uncritical distribution of ``u[x][y][z][4]`` in LU.

Regenerates the energy-component view: the union of the three directional
energy-flux boxes is critical, leaving 128 more uncritical elements than the
Figure 3 pattern (1628 uncritical in ``u`` overall).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures


@pytest.mark.paper
def test_figure7_lu_energy_component(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure7", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    mask = report.data["figure"].mask
    energy = mask[..., 4]
    # the three box ranges of the paper's Section IV-B
    assert energy[1:11, 1:11, 0:12].all()
    assert energy[1:11, 0:12, 1:11].all()
    assert energy[0:12, 1:11, 1:11].all()
    # corners/edges outside the boxes are uncritical (the 128 extras)
    assert not energy[0, 0, :].any()
    assert not energy[0, :, 0].any()
    assert int(np.count_nonzero(~mask)) == 1628
    benchmark.extra_info["uncritical"] = 1628


@pytest.mark.paper
def test_figure7_differs_from_figure3_only_on_component_4(runner_s,
                                                          benchmark):
    lu_mask = benchmark.pedantic(
        lambda: runner_s.result("LU").variables["u"].mask,
        iterations=1, rounds=1)
    bt_mask = runner_s.result("BT").variables["u"].mask
    for component in range(4):
        np.testing.assert_array_equal(lu_mask[..., component],
                                      bt_mask[..., component])
    assert np.count_nonzero(bt_mask[..., 4]) \
        - np.count_nonzero(lu_mask[..., 4]) == 128
