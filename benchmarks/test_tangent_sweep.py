"""Tangent (forward-mode) vs. segmented reverse sweep -- the probe crossover.

The tape-free tangent sweep carries one stacked direction per watched
element through a plain concrete ``run``: its cost scales with the number
of watched *directions*, while a reverse sweep's cost scales with the
number of *probes* (each probe is a full trace-and-backward pass, however
few elements are watched).  The regime the tangent sweep is for is
therefore few-watched-elements x long-loop x many-probes -- EP, whose
whole watch list is 12 scalars (``sx``, ``sy``, ``q``) across a 512-step
class-A loop.  CG at class T (62 watched directions, short loop) is
measured as the counter-case where the reverse sweep stays ahead.

Every configuration cross-checks the criticality masks of the two methods
elementwise before timing is reported.  The pytest entry asserts the
crossover (tangent beats the batched segmented reverse sweep on the
many-probe EP configuration); the module is also runnable standalone to
emit the ``BENCH_tangent.json`` perf baseline consumed by
``scripts/ci_check.sh``::

    python benchmarks/test_tangent_sweep.py --json BENCH_tangent.json
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ad.probes import segmented_batched_gradients
from repro.ad.segmented import SweepStats
from repro.ad.tangent import tangent_gradients
from repro.core.criticality import criticality_from_gradient
from repro.npb import registry

#: (benchmark, class, n_probes) grid: EP-A is the tangent regime (12
#: watched directions, 512 steps); CG-T is the reverse regime (62 watched
#: directions, short loop) kept as the honest counter-case
MEASURED = (("EP", "A", 1), ("EP", "A", 4), ("EP", "A", 16), ("CG", "T", 4))

#: the acceptance configuration: many probes on the long few-direction loop
CROSSOVER = ("EP", "A", 16)


def _perturbed(state, watch, rng, scale=1.0e-6):
    """A probe state drawn the way the analyzer's ``_perturb_state`` does."""
    probed = dict(state)
    for key in watch:
        base = np.asarray(state[key], dtype=np.float64)
        rms = float(np.sqrt(np.mean(base ** 2)))
        probed[key] = base + scale * (rms or 1.0) \
            * rng.standard_normal(base.shape)
    return probed


def measure_crossover(name: str, problem_class: str, n_probes: int) -> dict:
    """Wall-clock and peak memory of both multi-probe sweeps."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)
    watch = list(bench.default_watch_keys())
    directions = int(sum(np.size(state[k]) for k in watch))
    rng = np.random.default_rng(20240824)
    states = [dict(state)] \
        + [_perturbed(state, watch, rng) for _ in range(n_probes - 1)]

    rev_stats = SweepStats()
    t0 = time.perf_counter()
    rev = segmented_batched_gradients(bench, states, watch=watch,
                                      stats=rev_stats)
    reverse_seconds = time.perf_counter() - t0

    tan_stats = SweepStats()
    t0 = time.perf_counter()
    tan = [tangent_gradients(bench, s, watch=watch, stats=tan_stats)
           for s in states]
    tangent_seconds = time.perf_counter() - t0

    # the timing is only meaningful if both methods see the same structure:
    # per-probe criticality masks must agree elementwise
    for p in range(n_probes):
        for key in watch:
            assert np.array_equal(
                criticality_from_gradient(np.asarray(rev[key])[p]),
                criticality_from_gradient(tan[p][key])), \
                f"{name}[{key}] probe {p}: tangent mask diverges from reverse"

    return {
        "benchmark": name,
        "problem_class": problem_class,
        "steps": bench.total_steps,
        "n_probes": n_probes,
        "watched_directions": directions,
        "reverse_seconds": round(reverse_seconds, 4),
        "reverse_peak_tape_nbytes": rev_stats.peak_nbytes,
        "tangent_seconds": round(tangent_seconds, 4),
        "tangent_passes": tan_stats.tangent_passes,
        "tangent_peak_state_nbytes": tan_stats.tangent_peak_state_nbytes,
        "tangent_speedup": round(reverse_seconds / tangent_seconds, 2),
    }


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class,n_probes", MEASURED,
                         ids=[f"{n}-{c}-p{p}" for n, c, p in MEASURED])
def test_tangent_crossover(benchmark, name, problem_class, n_probes):
    """Masks agree everywhere; tangent wins the many-probe EP regime."""
    row = benchmark.pedantic(
        lambda: measure_crossover(name, problem_class, n_probes),
        iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    # one stacked forward pass carries every direction of every probe
    assert row["tangent_passes"] == n_probes
    if (name, problem_class, n_probes) == CROSSOVER:
        assert row["tangent_seconds"] < row["reverse_seconds"], row
        # and it does so without a tape: peak state footprint stays below
        # the reverse sweep's peak per-iteration tape
        assert row["tangent_peak_state_nbytes"] \
            < row["reverse_peak_tape_nbytes"], row


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure the tangent-vs-reverse probe crossover and "
                    "emit a JSON perf baseline")
    parser.add_argument("--json", default="BENCH_tangent.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class, n_probes in MEASURED:
        row = measure_crossover(name, problem_class, n_probes)
        rows.append(row)
        print(f"{name}-{problem_class} x {n_probes} probes "
              f"({row['watched_directions']} directions, "
              f"{row['steps']} steps): reverse {row['reverse_seconds']}s, "
              f"tangent {row['tangent_seconds']}s "
              f"({row['tangent_speedup']}x)")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
