"""Ablation -- auxiliary-file encodings and checkpoint I/O cost.

Compares the (start, stop) region records the paper describes against a raw
bitmap of the criticality mask, and measures the encode/decode and
pruned-write/restore costs on the paper's largest variable (FT's ``y``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.reader import read_checkpoint
from repro.ckpt.writer import write_pruned_checkpoint
from repro.core.regions import aux_record_nbytes, decode_regions, encode_mask
from repro.experiments import ablation


@pytest.mark.paper
def test_ablation_region_records_vs_bitmap(benchmark, runner_s):
    report = benchmark.pedantic(lambda: ablation.run_encoding(
        benchmarks=("BT", "SP", "MG", "CG", "LU", "FT"), problem_class="S"),
        iterations=1, rounds=1)
    print("\n" + report.text)
    rows = report.data["rows"]
    # the region records never cost more than the payload they save back;
    # FT's per-row padding is the break-even worst case (one run per row)
    for (bench_name, var_name), entry in rows.items():
        assert entry["region_bytes"] <= entry["payload_saved"], \
            f"{bench_name}({var_name}) region overhead exceeds savings"
    assert rows[("FT", "y")]["region_bytes"] \
        == rows[("FT", "y")]["payload_saved"]
    # MG's striped residual stays cheap: ~1k runs, < 20 KiB of records
    assert rows[("MG", "r")]["region_bytes"] < 20 * 1024


def test_region_encode_decode_cost_mg_r(benchmark, runner_s):
    """Encode+decode cost of the most fragmented mask in the study."""
    mask = runner_s.result("MG").variables["r"].mask

    def roundtrip():
        regions = encode_mask(mask)
        return decode_regions(regions, mask.size)

    decoded = benchmark(roundtrip)
    np.testing.assert_array_equal(decoded, mask.reshape(-1))


def test_pruned_checkpoint_roundtrip_cost_ft(benchmark, runner_s, tmp_path):
    """Write + read + materialise cost for the largest variable (FT y)."""
    bench = runner_s.benchmark("FT")
    result = runner_s.result("FT")
    base = bench.initial_state()

    def roundtrip(counter=[0]):
        counter[0] += 1
        written = write_pruned_checkpoint(
            tmp_path / f"ft_{counter[0]}.ckpt", bench, result.state,
            result.variables, step=result.step)
        loaded = read_checkpoint(written.path)
        return loaded.materialize(base)

    state = benchmark.pedantic(roundtrip, iterations=1, rounds=3)
    mask = result.variables["y"].mask
    np.testing.assert_array_equal(state["y_re"][mask],
                                  result.state["y_re"][mask])


def test_aux_overhead_never_exceeds_the_savings(runner_s, benchmark):
    """Per benchmark, the auxiliary records never cost more than the bytes
    pruning saves, and with 4-byte offsets (enough for every class-S
    variable) the suite-wide overhead drops below 10% of the savings."""

    def per_benchmark_totals():
        totals = {}
        for name in ("BT", "SP", "MG", "CG", "LU", "FT"):
            overhead8 = overhead4 = saved = 0
            for crit in runner_s.result(name).variables.values():
                if crit.n_uncritical == 0:
                    continue
                regions = crit.regions()
                overhead8 += aux_record_nbytes(regions, offset_nbytes=8)
                overhead4 += aux_record_nbytes(regions, offset_nbytes=4)
                saved += crit.full_nbytes - crit.critical_nbytes
            totals[name] = (overhead8, overhead4, saved)
        return totals

    totals = benchmark(per_benchmark_totals)
    for name, (overhead8, overhead4, saved) in totals.items():
        assert overhead8 <= saved, f"{name}: aux records exceed savings"
    total4 = sum(o4 for _, o4, _ in totals.values())
    total_saved = sum(s for *_, s in totals.values())
    assert total4 < 0.2 * total_saved
