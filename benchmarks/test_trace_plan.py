"""Trace-once / replay-many: plan-on vs plan-off segmented sweeps.

For each measured port the steady-state segmented sweep is timed with the
replay-plan cache warm (``trace_cache="plan"`` with a shared
:class:`~repro.ad.plan.PlanCache`, the state every probe loop, binomial
refill and repeated analysis runs in) and with the cache disabled
(``trace_cache="off"``, the pre-plan tracer).  Gradients are asserted
bitwise-identical, wall-clock and allocation counts are recorded, and the
plan hit/miss + arena telemetry is read back out of
:class:`~repro.ad.segmented.SweepStats`.  A second table measures the spill
schedule's async-vs-sync per-segment write latency.

The pytest entry pins the PR's acceptance criterion -- the plan is at
least 1.5x faster on the recording-bound class-T CG and FT sweeps -- and
the module is runnable standalone to emit the ``BENCH_plan.json`` perf
baseline consumed by ``scripts/ci_check.sh``::

    python benchmarks/test_trace_plan.py --json BENCH_plan.json
"""

from __future__ import annotations

import json
import tempfile
import time
import tracemalloc

import numpy as np
import pytest

from repro.ad.plan import PlanCache
from repro.ad.schedule import SpillSnapshots, snapshot_state
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.npb import registry

#: ports timed plan-on vs plan-off; class T is the recording-bound regime
#: the plan is about, class S shows the array-bound (BLAS-dominated) end
MEASURED = (("BT", "T"), ("SP", "T"), ("MG", "T"), ("CG", "T"),
            ("LU", "T"), ("FT", "T"), ("EP", "T"),
            ("CG", "S"), ("FT", "S"))

#: the recording-bound ports the acceptance criterion pins at >= 1.5x
PINNED_SPEEDUP = {("CG", "T"): 1.5, ("FT", "T"): 1.5}

#: spill async-vs-sync latency measurement configurations
SPILL_MEASURED = (("CG", "S"), ("FT", "T"))


def _interleaved_seconds(bench, state, repeats, off_kwargs,
                         on_kwargs) -> tuple[float, float]:
    """Best-of-N wall-clock for both modes, alternated back to back.

    Interleaving keeps transient machine load from landing on one mode
    only, and min-of-N discards the loaded repetitions entirely.
    """
    best_off = best_on = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        segmented_gradients(bench, state, **off_kwargs)
        dt = time.perf_counter() - t0
        best_off = dt if best_off is None else min(best_off, dt)
        t0 = time.perf_counter()
        segmented_gradients(bench, state, **on_kwargs)
        dt = time.perf_counter() - t0
        best_on = dt if best_on is None else min(best_on, dt)
    return best_off, best_on


def _sweep_allocations(bench, state, **kwargs) -> int:
    """Number of memory blocks allocated by one sweep (tracemalloc)."""
    tracemalloc.start(1)
    try:
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()
        snapshot0 = tracemalloc.take_snapshot()
        segmented_gradients(bench, state, **kwargs)
        snapshot1 = tracemalloc.take_snapshot()
        del before
        stats = snapshot1.compare_to(snapshot0, "filename")
        return int(sum(max(s.count_diff, 0) for s in stats))
    finally:
        tracemalloc.stop()


def measure_plan(name: str, problem_class: str, repeats: int = 5) -> dict:
    """Plan-on vs plan-off wall-clock, allocations and telemetry."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)

    cache = PlanCache()
    # learn + compile, then measure steady state (the analyzer's shared
    # per-analysis cache reaches this state after its first probe sweep)
    reference = segmented_gradients(bench, state, trace_cache="off")
    for _ in range(2):
        warmed = segmented_gradients(bench, state, plan_cache=cache)
    for key in reference:
        a = np.asarray(reference[key], dtype=np.float64)
        b = np.asarray(warmed[key], dtype=np.float64)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
            f"{name}[{key}]: plan-on gradients differ bitwise"

    if problem_class == "S":
        repeats = min(repeats, 3)    # class-S sweeps are ~0.5 s each
    t_off, t_on = _interleaved_seconds(bench, state, repeats,
                                       {"trace_cache": "off"},
                                       {"plan_cache": cache})

    alloc_off = _sweep_allocations(bench, state, trace_cache="off")
    alloc_on = _sweep_allocations(bench, state, plan_cache=cache)

    stats = SweepStats()
    segmented_gradients(bench, state, stats=stats, plan_cache=cache)
    return {
        "benchmark": name,
        "problem_class": problem_class,
        "steps": bench.total_steps,
        "plan_off_seconds": round(t_off, 5),
        "plan_on_seconds": round(t_on, 5),
        "speedup": round(t_off / t_on, 3),
        "plan_off_alloc_blocks": alloc_off,
        "plan_on_alloc_blocks": alloc_on,
        "stats": {
            "trace_cache": stats.trace_cache,
            "plan_hits": stats.plan_hits,
            "plan_misses": stats.plan_misses,
            "plan_compiles": stats.plan_compiles,
            "plan_rejects": stats.plan_rejects,
            "plan_forward_replays": stats.plan_forward_replays,
            "plan_arena_slots": stats.plan_arena_slots,
            "plan_arena_nbytes": stats.plan_arena_nbytes,
        },
    }


def measure_spill_async(name: str, problem_class: str,
                        repeats: int = 3) -> dict:
    """Forward-pass segment latency with async vs sync spill writes."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)
    steps = bench.total_steps

    def forward(async_writes: bool) -> float:
        best = None
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="bench-plan-") as tmp:
                sched = SpillSnapshots(steps, directory=tmp, bench=bench,
                                       async_writes=async_writes)
                current = snapshot_state(state)
                t0 = time.perf_counter()
                sched.record(0, current)
                for t in range(1, steps + 1):
                    current = bench.run(current, 1)
                    sched.record(t, current)
                sched.flush()
                dt = time.perf_counter() - t0
                sched.close()
            best = dt if best is None else min(best, dt)
        return best

    t_sync = forward(False)
    t_async = forward(True)
    return {
        "benchmark": name,
        "problem_class": problem_class,
        "steps": steps,
        "sync_forward_seconds": round(t_sync, 5),
        "async_forward_seconds": round(t_async, 5),
        "async_speedup": round(t_sync / t_async, 3),
    }


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", MEASURED,
                         ids=[f"{n}-{c}" for n, c in MEASURED])
def test_plan_speedup(benchmark, name, problem_class):
    """plan-on bitwise-identical and (where pinned) >= 1.5x faster."""
    row = benchmark.pedantic(lambda: measure_plan(name, problem_class),
                             iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    stats = row["stats"]
    assert stats["trace_cache"] == "plan"
    if name != "IS":
        assert stats["plan_hits"] > 0, row
        assert stats["plan_arena_slots"] > 0, row
    assert stats["plan_rejects"] == 0, row

    floor = PINNED_SPEEDUP.get((name, problem_class))
    if floor is not None:
        assert row["speedup"] >= floor, \
            (f"{name}-{problem_class}: plan-on only "
             f"{row['speedup']:.2f}x over plan-off (need >= {floor}x)")
        # replaying cannot allocate more than tracing does
        assert row["plan_on_alloc_blocks"] < row["plan_off_alloc_blocks"], \
            row


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", SPILL_MEASURED,
                         ids=[f"{n}-{c}" for n, c in SPILL_MEASURED])
def test_spill_async_latency(benchmark, name, problem_class):
    """async spill writes never slow the forward pass down materially."""
    row = benchmark.pedantic(
        lambda: measure_spill_async(name, problem_class),
        iterations=1, rounds=1)
    benchmark.extra_info.update(row)
    # the worker thread must at worst break even (generous margin: the
    # class-T states are tiny, so there is little I/O to hide)
    assert row["async_speedup"] > 0.5, row


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure plan-on vs plan-off segmented sweeps and "
                    "spill async-vs-sync latency; emit a JSON baseline")
    parser.add_argument("--json", default="BENCH_plan.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class in MEASURED:
        row = measure_plan(name, problem_class)
        rows.append(row)
        print(f"{name}-{problem_class} ({row['steps']} steps): "
              f"off={row['plan_off_seconds']}s on={row['plan_on_seconds']}s "
              f"-> {row['speedup']}x  "
              f"(allocs {row['plan_off_alloc_blocks']} -> "
              f"{row['plan_on_alloc_blocks']}, "
              f"hits={row['stats']['plan_hits']}, "
              f"arena={row['stats']['plan_arena_nbytes']} B)")

    spill_rows = []
    for name, problem_class in SPILL_MEASURED:
        row = measure_spill_async(name, problem_class)
        spill_rows.append(row)
        print(f"spill {name}-{problem_class}: "
              f"sync={row['sync_forward_seconds']}s "
              f"async={row['async_forward_seconds']}s "
              f"-> {row['async_speedup']}x")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"plan": rows, "spill_async": spill_rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
