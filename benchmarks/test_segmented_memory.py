"""Segmented vs. monolithic reverse sweep -- peak tape memory and wall-clock.

For each measured benchmark the full remaining-loop analysis is run twice:
once on a single monolithic tape and once with the segmented sweep
(:mod:`repro.ad.segmented`).  The monolithic peak is the whole tape; the
segmented peak is the largest single per-iteration tape.  The pytest entry
asserts the ~steps-fold peak reduction (and bitwise-equal gradients); the
module is also runnable standalone to emit the ``BENCH_segmented.json``
perf baseline consumed by ``scripts/ci_check.sh``::

    python benchmarks/test_segmented_memory.py --json BENCH_segmented.json
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ad.reverse import backward
from repro.ad.segmented import (SweepStats, float_state_keys,
                                segmented_gradients)
from repro.npb import registry

#: benchmarks whose class-S analyses span many iterations (the regime the
#: segmented sweep is about); EP's class-S loop is far too long for a
#: monolithic baseline measurement, which is rather the point -- it is
#: measured at class T where the monolithic tape still fits comfortably
MEASURED = (("CG", "S"), ("FT", "S"), ("EP", "T"), ("LU", "T"))


def measure_sweeps(name: str, problem_class: str) -> dict:
    """Peak tape size and wall-clock of both sweeps, from step 0."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)       # analyse the entire main loop
    steps = bench.total_steps
    watch = bench.default_watch_keys()

    t0 = time.perf_counter()
    tape, leaves, out = bench.traced_restart(state, watch=watch)
    mono_grads = dict(zip(watch, backward(tape, out,
                                          [leaves[k] for k in watch],
                                          strict=False)))
    mono_seconds = time.perf_counter() - t0
    mono_nodes, mono_nbytes = len(tape), tape.nbytes()
    del tape, leaves, out

    stats = SweepStats()
    t0 = time.perf_counter()
    seg_grads = segmented_gradients(bench, state, watch=watch, stats=stats)
    seg_seconds = time.perf_counter() - t0

    for key in watch:
        a = np.asarray(mono_grads[key], dtype=np.float64)
        b = np.asarray(seg_grads[key], dtype=np.float64)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
            f"{name}[{key}]: sweeps disagree bitwise"

    chain = float_state_keys(state)
    return {
        "benchmark": name,
        "problem_class": problem_class,
        "steps": steps,
        "chain_leaves": len(chain),
        "state_nbytes": int(sum(np.asarray(state[k], dtype=np.float64).size
                                for k in chain)) * 8,
        "monolithic_nodes": mono_nodes,
        "monolithic_nbytes": mono_nbytes,
        "monolithic_seconds": round(mono_seconds, 4),
        "segmented_peak_nodes": stats.peak_nodes,
        "segmented_peak_nbytes": stats.peak_nbytes,
        "segmented_total_nodes": stats.total_nodes,
        "segmented_seconds": round(seg_seconds, 4),
        "node_reduction": round(mono_nodes / max(stats.peak_nodes, 1), 2),
        "nbytes_reduction": round(mono_nbytes / max(stats.peak_nbytes, 1),
                                  2),
    }


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", MEASURED,
                         ids=[f"{n}-{c}" for n, c in MEASURED])
def test_segmented_peak_memory_scales_with_one_iteration(benchmark, name,
                                                         problem_class):
    """Peak tape size drops ~steps-fold; gradients stay bitwise equal."""
    row = benchmark.pedantic(lambda: measure_sweeps(name, problem_class),
                             iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    steps = row["steps"]
    # the segmented peak must be bounded by a single iteration's tape: the
    # monolithic tape holds ~steps of them.  Every segment re-watches the
    # chained state entries as fresh leaves (the monolithic tape watches
    # them once), so the per-segment leaf overhead is added back before
    # comparing; factor 2 slack absorbs the output segment and
    # per-benchmark asymmetry between iterations.
    leaf_nodes = steps * row["chain_leaves"]
    leaf_nbytes = steps * row["state_nbytes"]
    assert row["segmented_peak_nodes"] * steps \
        <= (row["monolithic_nodes"] + leaf_nodes) * 2, row
    assert row["segmented_peak_nbytes"] * steps \
        <= (row["monolithic_nbytes"] + leaf_nbytes) * 2, row
    # and it never records asymptotically more work than the monolithic tape
    assert row["segmented_total_nodes"] \
        <= 2 * row["monolithic_nodes"] + leaf_nodes + steps, row


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure segmented vs monolithic sweep peaks and emit "
                    "a JSON perf baseline")
    parser.add_argument("--json", default="BENCH_segmented.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class in MEASURED:
        row = measure_sweeps(name, problem_class)
        rows.append(row)
        print(f"{name}-{problem_class}: monolithic {row['monolithic_nodes']}"
              f" nodes / {row['monolithic_nbytes']} B, segmented peak "
              f"{row['segmented_peak_nodes']} nodes / "
              f"{row['segmented_peak_nbytes']} B "
              f"({row['node_reduction']}x node reduction; "
              f"{row['monolithic_seconds']}s vs "
              f"{row['segmented_seconds']}s)")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
