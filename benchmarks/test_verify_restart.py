"""Section IV-C -- restart verification with pruned checkpoints.

Times the full failure/restart scenario (run with pruned checkpoints, crash,
restore on top of garbage, finish, verify) and asserts every benchmark of
the suite passes its own verification, with the negative control failing as
expected.
"""

from __future__ import annotations

import pytest

from repro.ckpt.failure import run_failure_scenario
from repro.experiments import verify
from repro.experiments.paper import VERIFY_BENCHMARKS
from repro.experiments.runner import ExperimentRunner


@pytest.mark.paper
def test_restart_scenario_cost_bt_class_s(benchmark, runner_s, tmp_path):
    """Cost of one end-to-end failure/restart scenario (BT, class S)."""
    bench = runner_s.benchmark("BT")
    result = runner_s.result("BT")

    def scenario(counter=[0]):
        counter[0] += 1
        return run_failure_scenario(
            bench, tmp_path / f"run{counter[0]}", result.variables,
            interval=bench.total_steps // 4, corrupt="uncritical")

    outcome = benchmark.pedantic(scenario, iterations=1, rounds=3)
    assert outcome.verification_passed


@pytest.mark.paper
def test_verify_all_benchmarks_restart_successfully(benchmark, tmp_path):
    """The paper's result: all benchmarks restart and pass verification.

    The reduced problem class is used for the full 8-benchmark sweep so the
    harness stays fast; the class-S behaviour of the restart path is covered
    by the scenario benchmark above.
    """
    runner = ExperimentRunner(problem_class="T")
    report = benchmark.pedantic(
        lambda: verify.run(runner, benchmarks=VERIFY_BENCHMARKS,
                           directory=tmp_path / "suite"),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    scenarios = report.data["scenarios"]
    assert len(scenarios) == len(VERIFY_BENCHMARKS)
    assert all(s.verification_passed for s in scenarios)
    negative = report.data["negative_control"]
    assert negative is not None and not negative.verification_passed
    benchmark.extra_info["verified"] = [s.benchmark for s in scenarios]
