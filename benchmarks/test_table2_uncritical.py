"""Table II -- number of uncritical elements per checkpoint variable.

Times the AD criticality analysis (the paper's core computation) on one
benchmark from scratch, then regenerates the whole Table II from the shared
session analyses and asserts every row matches the paper exactly.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import scrutinize
from repro.experiments import paper, table2
from repro.npb import registry


@pytest.mark.paper
def test_ad_analysis_cost_bt_class_s(benchmark):
    """Cost of one full element-level AD analysis (BT, class S)."""
    bench = registry.create("BT", "S")
    state = bench.checkpoint_state(bench.total_steps // 2)
    result = benchmark.pedantic(lambda: scrutinize(bench, state=state),
                                iterations=1, rounds=3)
    assert result.variables["u"].n_uncritical == 1500


@pytest.mark.paper
def test_table2_uncritical_elements(benchmark, runner_s):
    report = benchmark.pedantic(lambda: table2.run(runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    rows = {(r["benchmark"], r["variable"]): r for r in report.data["rows"]}
    for key, (uncritical, total) in paper.TABLE2_EXPECTED.items():
        assert rows[key]["uncritical"] == uncritical
        assert rows[key]["total"] == total
    benchmark.extra_info["uncritical"] = {
        f"{b}({v})": rows[(b, v)]["uncritical"]
        for b, v in paper.TABLE2_EXPECTED}


@pytest.mark.paper
def test_table2_average_uncritical_rate_matches_abstract(runner_s, benchmark):
    """The abstract claims an average saving of ~13% and up to 20%+."""
    report = benchmark.pedantic(lambda: table2.run(runner_s),
                                iterations=1, rounds=1)
    rates = [row["uncritical_rate"] for row in report.data["rows"]]
    average = sum(rates) / len(rates)
    assert 0.10 <= average <= 0.16
    assert max(rates) >= 0.20
