"""Figure 3 -- the BT/SP critical/uncritical cube pattern.

Regenerates the 12x13x13 component-cube distribution of BT's ``u`` (shared
by SP and by LU's first four components): uncritical elements exactly on the
padded ``j == 12`` and ``i == 12`` faces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.masks import uncritical_planes
from repro.experiments import figures


@pytest.mark.paper
def test_figure3_bt_u_distribution(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure3", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    result = report.data["figure"]
    cube = result.mask[..., 0]
    assert uncritical_planes(cube) == {1: [12], 2: [12]}
    assert int(np.count_nonzero(~result.mask)) == 1500
    benchmark.extra_info["uncritical"] = 1500


@pytest.mark.paper
def test_figure3_pattern_shared_by_sp_and_lu_components(runner_s, benchmark):
    def collect():
        bt = runner_s.result("BT").variables["u"].mask[..., 0]
        sp = runner_s.result("SP").variables["u"].mask[..., 0]
        lu = runner_s.result("LU")
        return bt, sp, lu

    bt, sp, lu = benchmark.pedantic(collect, iterations=1, rounds=1)
    np.testing.assert_array_equal(bt, sp)
    # LU's rho_i / qs / rsd and u components 0-3 follow the same pattern
    np.testing.assert_array_equal(lu.variables["rho_i"].mask, bt[:, :, :])
    np.testing.assert_array_equal(lu.variables["qs"].mask, bt)
    for component in range(4):
        np.testing.assert_array_equal(lu.variables["u"].mask[..., component],
                                      bt)
        np.testing.assert_array_equal(
            lu.variables["rsd"].mask[..., component], bt)
