"""Figure 8 -- critical/uncritical distribution of ``y`` in FT.

Regenerates the spectrum view: only the padding plane ``k == 64`` of the
64x64x65 dcomplex array is uncritical (4096 elements, 1.5%).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.masks import uncritical_planes
from repro.experiments import figures


@pytest.mark.paper
def test_figure8_ft_y_distribution(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure8", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    mask = report.data["figure"].mask
    assert uncritical_planes(mask) == {2: [64]}
    assert int(np.count_nonzero(~mask)) == 4096
    benchmark.extra_info["uncritical"] = 4096


@pytest.mark.paper
def test_figure8_sums_checkpointed_in_full(runner_s, benchmark):
    """The companion observation: the checksum accumulator ``sums`` is fully
    critical because every entry is read-modify-written."""
    result = benchmark.pedantic(lambda: runner_s.result("FT"),
                                iterations=1, rounds=1)
    assert result.variables["sums"].n_uncritical == 0
    assert result.variables["y"].n_elements == 266240
