"""Extension -- impact-aware mixed-precision checkpointing.

Not a table of the paper: this regenerates the future-work study described
in its conclusion ("using lower precision for uncritical or even those
elements that are of very low impact").  The harness times the
budget-tuning loop and asserts that (a) every tuned restart still passes its
benchmark's verification and (b) mixed precision saves strictly more
storage than element pruning alone wherever the impact distribution allows
it (MG, LU).
"""

from __future__ import annotations

import pytest

from repro.experiments import precision


@pytest.mark.paper
def test_extension_mixed_precision_study(benchmark, runner_s, tmp_path):
    report = benchmark.pedantic(
        lambda: precision.run(runner_s, benchmarks=("BT", "MG", "LU"),
                              directory=tmp_path),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text

    data = report.data
    for entry in data.values():
        assert entry["verified"]
    # where low-impact elements exist, mixed precision beats pure pruning
    assert data["MG"]["mixed_nbytes"] < data["MG"]["pruned_nbytes"]
    assert data["LU"]["mixed_nbytes"] < data["LU"]["pruned_nbytes"]
    benchmark.extra_info["mixed_saved_percent"] = {
        name: round(100 * (1 - entry["mixed_nbytes"]
                           / entry["full_nbytes"]), 1)
        for name, entry in data.items()}


@pytest.mark.paper
def test_extension_aggressive_plan_breaks_verification(benchmark, runner_s,
                                                       tmp_path):
    """The negative result that motivates tolerance-driven planning."""
    report = benchmark.pedantic(
        lambda: precision.run(runner_s, benchmarks=("MG",),
                              directory=tmp_path),
        iterations=1, rounds=1)
    entry = report.data["MG"]
    assert entry["verified"]
    assert entry["aggressive_verified"] is False
    assert entry["aggressive_nbytes"] < entry["mixed_nbytes"]
