"""Table I -- checkpoint-variable inventory of the eight NPB ports.

Regenerates the paper's Table I (benchmark -> variables necessary for
checkpointing, class-S data structures) and times how long enumerating the
inventory takes.
"""

from __future__ import annotations

import pytest

from repro.experiments import table1
from repro.experiments.runner import ExperimentRunner
from repro.npb import registry


@pytest.mark.paper
def test_table1_variable_inventory(benchmark, runner_s):
    report = benchmark.pedantic(
        lambda: table1.run(ExperimentRunner(problem_class="S")),
        iterations=1, rounds=3)
    print("\n" + report.text)
    assert report.matches_paper
    assert set(report.data["rows"]) == set(registry.available_benchmarks())
    benchmark.extra_info["rows"] = report.data["rows"]


@pytest.mark.paper
def test_table1_class_s_element_counts(benchmark):
    counts = benchmark(lambda: {
        (entry.name, var.name): var.n_elements
        for entry in registry.table1_rows("S")
        for var in entry.variables})
    assert counts[("BT", "u")] == 10140
    assert counts[("MG", "u")] == 46480
    assert counts[("CG", "x")] == 1402
    assert counts[("LU", "rho_i")] == 2028
    assert counts[("FT", "y")] == 266240
    assert counts[("IS", "key_array")] == 65536
