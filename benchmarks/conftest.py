"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*.py`` file regenerates one table or figure of the
paper: it times the characteristic computation with ``pytest-benchmark``,
prints the regenerated rows/series, and asserts that the result matches what
the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

The expensive class-S criticality analyses are shared through a session
fixture so each experiment is analysed exactly once per benchmark session.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner


def pytest_configure(config):
    # The harness prints every regenerated table/figure so the run log reads
    # like the paper's evaluation section; -s is not required because the
    # reports are also attached to the benchmark's extra_info.
    config.addinivalue_line("markers",
                            "paper: marks benchmarks that regenerate a "
                            "specific table or figure of the paper")


@pytest.fixture(scope="session")
def runner_s() -> ExperimentRunner:
    """Class-S experiment runner shared by every benchmark in the session."""
    return ExperimentRunner(problem_class="S")


@pytest.fixture(scope="session")
def runner_t() -> ExperimentRunner:
    """Reduced-size runner for benchmarks that only need the code path."""
    return ExperimentRunner(problem_class="T")
