"""Plan lowering: fused-interp vs unfused-interp vs numba warm replay.

For each coarse class-T port (the recording-bound regime where the plan
compiles within one sweep) the *warm replay* of the cached step plan --
one ``replay_step`` call, forward kernels plus reverse sweep over the
preallocated arena -- is timed under three configurations of the
capture -> IR -> passes -> executor pipeline:

* ``fused``    -- ``plan_optimize="fuse"``, ``executor="interp"`` (the
  default: fusion groups, dead-slot elimination, packed arena, and the
  specialised ``out=``-buffer kernels);
* ``unfused``  -- ``plan_optimize="off"``, ``executor="interp"`` (the
  faithful pre-lowering replay: generic emitters, no passes);
* ``numba``    -- ``plan_optimize="fuse"``, ``executor="numba"`` (falls
  back to interp silently when numba is not installed; the recorded
  ``executor_kind`` says which one actually ran).

Gradients are asserted bitwise-identical across all three modes and
against the uncached tracer, and the liveness-packed arena footprint is
asserted strictly smaller than the unpacked one on every measured port.
The pytest entry pins the lowering PR's acceptance criterion -- the
fused interpreter is at least 1.5x faster than the unfused replay on at
least the pinned recording-bound ports -- and the module is runnable
standalone to emit the ``BENCH_lowering.json`` perf baseline consumed by
``scripts/ci_check.sh``::

    python benchmarks/test_plan_lowering.py --json BENCH_lowering.json
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ad.plan import PlanCache
from repro.ad.segmented import segmented_gradients
from repro.npb import registry

#: the coarse class-T ports: their step plans compile within one sweep,
#: so the steady state of every probe loop is pure warm replay
MEASURED = (("BT", "T"), ("SP", "T"), ("MG", "T"), ("CG", "T"),
            ("LU", "T"))

#: recording-bound ports the acceptance criterion pins at >= 1.5x
#: fused-over-unfused warm replay
PINNED_SPEEDUP = {("BT", "T"): 1.5, ("CG", "T"): 1.5}

#: every measured port must at least break even (generous noise margin)
FLOOR_SPEEDUP = 1.0

#: (plan_optimize, executor) per measured mode
MODES = {
    "fused": ("fuse", "interp"),
    "unfused": ("off", "interp"),
    "numba": ("fuse", "numba"),
}


def _bitwise(a, b, label: str) -> None:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    assert a.shape == b.shape, f"{label}: shape {a.shape} vs {b.shape}"
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), \
        f"{label}: bits differ"


def _warm_step_plan(bench, state, plan_optimize: str, executor: str):
    """Warm a cache through 3 sweeps; return (cache, cached step plan)."""
    cache = PlanCache(plan_optimize=plan_optimize, executor=executor)
    for _ in range(3):   # capture, compile, warm replay
        grads = segmented_gradients(bench, state, plan_cache=cache)
    plans = [entry.coarse_plan for entry in cache._entries.values()
             if entry.coarse_plan is not None
             and entry.coarse_plan.kind == "step"]
    assert plans, f"{bench.name}: no coarse step plan compiled"
    return cache, plans[0], grads


def measure_lowering(name: str, problem_class: str, repeats: int = 30,
                     rounds: int = 9) -> dict:
    """Warm-replay wall-clock per mode, bitwise parity, arena telemetry."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)
    reference = segmented_gradients(bench, state, trace_cache="off")

    caches, plans = {}, {}
    for mode, (plan_optimize, executor) in MODES.items():
        cache, plan, grads = _warm_step_plan(bench, state,
                                             plan_optimize, executor)
        caches[mode], plans[mode] = cache, plan
        for key in reference:
            _bitwise(reference[key], grads[key],
                     f"{name} {mode} sweep[{key}]")

    # one replay each, asserted bitwise across modes before timing
    plan0 = plans["fused"]
    cotangents = {key: np.ones(plan0._shapes[slot], dtype=np.float64)
                  for key, slot in zip(plan0.watch, plan0._leaf_slots)}
    replayed = {mode: plan.replay_step(state, cotangents)
                for mode, plan in plans.items()}
    for mode in ("fused", "numba"):
        for key in replayed[mode]:
            _bitwise(replayed["unfused"][key], replayed[mode][key],
                     f"{name} {mode} replay[{key}]")

    # interleaved best-of-N: transient machine load cannot land on one
    # mode only, and min-of-N discards the loaded rounds entirely
    best: dict[str, float] = {}
    for _ in range(rounds):
        for mode, plan in plans.items():
            t0 = time.perf_counter()
            for _ in range(repeats):
                plan.replay_step(state, cotangents)
            dt = time.perf_counter() - t0
            best[mode] = min(best.get(mode, dt), dt)

    fused = caches["fused"]
    row = {
        "benchmark": name,
        "problem_class": problem_class,
        "replay_us": {mode: round(best[mode] * 1e6 / repeats, 2)
                      for mode in MODES},
        "speedup_fused": round(best["unfused"] / best["fused"], 3),
        "speedup_numba": round(best["unfused"] / best["numba"], 3),
        "executor_kind": {mode: caches[mode].executor_kind
                          for mode in MODES},
        "fused_ops": fused.fused_ops,
        "eliminated_slots": fused.eliminated_slots,
        "arena_nbytes": fused.arena_nbytes,
        "arena_nbytes_packed": fused.arena_nbytes_packed,
    }
    # the liveness pass must actually shrink the arena, strictly, on
    # every measured port (acceptance criterion of the lowering PR)
    assert 0 < row["arena_nbytes_packed"] < row["arena_nbytes"], row
    unfused = caches["unfused"]
    assert unfused.fused_ops == 0 and unfused.eliminated_slots == 0
    assert unfused.arena_nbytes_packed == unfused.arena_nbytes
    return row


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", MEASURED,
                         ids=[f"{n}-{c}" for n, c in MEASURED])
def test_lowering_speedup(benchmark, name, problem_class):
    """fused replay bitwise-identical and (where pinned) >= 1.5x faster."""
    row = benchmark.pedantic(lambda: measure_lowering(name, problem_class),
                             iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    assert row["fused_ops"] > 0, row
    assert row["executor_kind"]["unfused"] == "interp"
    # numba is optional: the resolved kind records the silent fallback
    assert row["executor_kind"]["numba"] in ("numba", "interp")

    floor = PINNED_SPEEDUP.get((name, problem_class), FLOOR_SPEEDUP)
    assert row["speedup_fused"] >= floor, \
        (f"{name}-{problem_class}: fused replay only "
         f"{row['speedup_fused']:.2f}x over unfused (need >= {floor}x)")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure fused vs unfused vs numba warm plan replay; "
                    "emit a JSON baseline")
    parser.add_argument("--json", default="BENCH_lowering.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class in MEASURED:
        row = measure_lowering(name, problem_class)
        rows.append(row)
        us = row["replay_us"]
        print(f"{name}-{problem_class}: unfused={us['unfused']}us "
              f"fused={us['fused']}us numba={us['numba']}us "
              f"-> {row['speedup_fused']}x fused "
              f"({row['executor_kind']['numba']} executor for numba mode, "
              f"arena {row['arena_nbytes']} -> "
              f"{row['arena_nbytes_packed']} B, "
              f"fused_ops={row['fused_ops']})")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"lowering": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
