"""Figure 5 -- critical/uncritical distribution of array ``r`` in MG.

Regenerates the repetitive stripe pattern of MG's residual: the restriction
loop bounds read indices 0..32 of each dimension of the finest 34x34x34
block, giving 10543 uncritical elements overall.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regions import encode_mask
from repro.experiments import figures


@pytest.mark.paper
def test_figure5_mg_r_distribution(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure5", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    mask = report.data["figure"].mask
    assert int(np.count_nonzero(~mask)) == 10543
    benchmark.extra_info["uncritical"] = 10543


@pytest.mark.paper
def test_figure5_repetitive_run_structure(runner_s, benchmark):
    """The run-length encoding exposes the periodic pattern the paper plots:
    33-element critical runs separated by single uncritical slots, with a
    whole uncritical plane every 34 stripes."""
    mask = runner_s.result("MG").variables["r"].mask
    regions = benchmark(lambda: encode_mask(mask))
    lengths = {len(r) for r in regions}
    # stripe runs within a j-row are 33 long; consecutive rows of the last
    # j-plane merge with the k-plane boundary into longer runs -- but the
    # dominant run length is exactly 33
    assert 33 in lengths
    count_33 = sum(1 for r in regions if len(r) == 33)
    assert count_33 > 1000
    # every critical run lies inside the finest level
    assert all(r.stop <= 34 ** 3 for r in regions)
