"""AD engine overhead -- what the analysis costs relative to the application.

Not a table of the paper, but the number a practitioner asks first: how much
slower is a traced (taped) run of the remaining computation than the plain
NumPy run, and how long does the one-off reverse sweep take?  The analysis
is performed once per application (offline), so even an order-of-magnitude
overhead is acceptable; these benchmarks document where this implementation
actually lands.
"""

from __future__ import annotations

import pytest

from repro.ad.reverse import backward
from repro.npb import registry


@pytest.fixture(scope="module", params=["BT", "MG", "CG"])
def bench_and_state(request):
    bench = registry.create(request.param, "S")
    state = bench.checkpoint_state(bench.total_steps // 2)
    return bench, state


def test_plain_restart_run(benchmark, bench_and_state):
    """Baseline: the remaining computation on plain NumPy state."""
    bench, state = bench_and_state
    value = benchmark(lambda: bench.restart_output(state))
    assert float(value) == float(value)  # finite scalar
    benchmark.extra_info["benchmark"] = bench.name


def test_traced_restart_run(benchmark, bench_and_state):
    """Forward pass with tape recording (the AD analysis' forward cost)."""
    bench, state = bench_and_state
    tape, leaves, out = benchmark(lambda: bench.traced_restart(state))
    assert len(tape) > 0
    benchmark.extra_info["benchmark"] = bench.name
    benchmark.extra_info["tape_nodes"] = len(tape)


def test_reverse_sweep(benchmark, bench_and_state):
    """The reverse sweep that yields every element's derivative at once."""
    bench, state = bench_and_state
    tape, leaves, out = bench.traced_restart(state)
    inputs = list(leaves.values())
    grads = benchmark(lambda: backward(tape, out, inputs, strict=False))
    assert len(grads) == len(inputs)
    benchmark.extra_info["benchmark"] = bench.name
