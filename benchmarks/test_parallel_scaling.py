"""Parallel scrutiny engine -- scaling and warm-cache regeneration.

Times the full class-S analysis sweep three ways: sequentially (the old
code path), fanned out over a worker pool, and served from a warm
persistent result store.  The pool run must be bitwise-identical to the
sequential one and, on multi-core machines, faster; the warm-store run
must regenerate Tables I-III without a single AD sweep.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import table1, table2, table3
from repro.experiments.parallel import (ParallelRunner, ScrutinyJob,
                                        default_workers, run_job)
from repro.experiments.runner import ExperimentRunner
from repro.npb import registry

ALL_BENCHMARKS = registry.available_benchmarks()


def _sweep_jobs() -> list[ScrutinyJob]:
    return [ScrutinyJob(name, "S") for name in ALL_BENCHMARKS]


@pytest.mark.paper
def test_parallel_sweep_matches_and_scales(benchmark):
    """Pool sweep == sequential sweep, and faster when cores allow."""
    jobs = _sweep_jobs()

    t0 = time.perf_counter()
    sequential = [run_job(job) for job in jobs]
    sequential_s = time.perf_counter() - t0

    workers = default_workers()
    engine = ParallelRunner(workers=workers)
    parallel = benchmark.pedantic(lambda: engine.run(jobs),
                                  iterations=1, rounds=1)

    for seq, par in zip(sequential, parallel):
        assert seq.benchmark == par.benchmark
        assert seq.to_dict() == par.to_dict()

    parallel_s = benchmark.stats.stats.mean
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["sequential_s"] = round(sequential_s, 3)
    benchmark.extra_info["speedup"] = round(sequential_s / parallel_s, 2)
    if workers >= 2 and (os.cpu_count() or 1) >= 2:
        # with real cores the embarrassingly parallel sweep must win;
        # leave generous slack for pool start-up on small problems
        assert parallel_s < sequential_s * 1.10


@pytest.mark.paper
def test_warm_store_regenerates_tables_without_sweeps(benchmark, tmp_path):
    """A warm ResultStore serves Tables I-III with zero AD sweeps."""
    cache_dir = tmp_path / "cache"

    t0 = time.perf_counter()
    cold = ExperimentRunner(problem_class="S", cache_dir=cache_dir)
    cold.prefetch(ALL_BENCHMARKS)
    cold_s = time.perf_counter() - t0

    def regenerate():
        warm = ExperimentRunner(problem_class="S", cache_dir=cache_dir)
        reports = [table1.run(warm), table2.run(warm),
                   table3.run(warm, measure_on_disk=False)]
        return warm, reports

    warm, reports = benchmark.pedantic(regenerate, iterations=1, rounds=3)

    assert all(report.matches_paper for report in reports)
    assert warm.store.misses == 0          # not one sweep re-ran
    assert warm.store.hits >= len(set(
        table2.TABLE2_BENCHMARKS) | set(table3.TABLE3_BENCHMARKS))
    warm_s = benchmark.stats.stats.mean
    benchmark.extra_info["cold_sweep_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_regen_s"] = round(warm_s, 4)
    assert warm_s < cold_s
