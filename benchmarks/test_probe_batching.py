"""Batched vs. per-probe multi-probe sweeps -- wall-clock and mask parity.

For each measured configuration the full mid-run criticality analysis
(``scrutinize``-equivalent: checkpoint state + AD sweeps + masks) is run
three ways: a single probe (the baseline every multi-probe cost is judged
against), four probes executed by the batched probe axis
(:mod:`repro.ad.probes`, one trace + one sweep), and four probes executed
by the legacy per-probe loop (four traces + four sweeps).

Two regimes are pinned separately:

* **recording-bound** (class T rows): the per-primitive Python recording
  overhead dominates the numpy work, which is the regime the batched sweep
  amortises -- four probes must complete within **2x** the single-probe
  wall-clock (the per-probe loop pays ~4x);
* **array-bound** (class S rows): the 1400^2 matvecs (CG) and 2 MB
  spectral fields (FT) make the numpy FLOPs/bandwidth dominate, and four
  probes are four times the arithmetic no matter how they are scheduled --
  here the batched sweep must still *beat the loop it replaces* (on CG the
  multi-RHS GEMM reads the matrix once for all probes, ~1.4-1.9x faster
  than the loop; on FT the win narrows to dispatch amortisation), and a 4x
  regression cap guards against the batched path ever costing more than
  the naive loop's asymptote.

In both regimes the masks must be identical between the two paths.  The
module is also runnable standalone to emit the ``BENCH_probes.json`` perf
baseline consumed by ``scripts/ci_check.sh``::

    python benchmarks/test_probe_batching.py --json BENCH_probes.json
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.criticality import CriticalityAnalyzer
from repro.npb import registry

#: (benchmark, problem class, batched-vs-single wall-clock bound); ``None``
#: skips the single-ratio cap where the single-probe baseline is too small
#: and noisy to divide by reliably (FT-S: ~0.1-0.25 s run-to-run) -- the
#: batched-vs-loop assertion still applies there
MEASURED = (
    ("CG", "T", 2.0),   # recording-bound: the batching premise, hard 2x
    ("FT", "T", 2.0),
    ("CG", "S", 4.0),   # array-bound: regression cap at the loop asymptote
    ("FT", "S", None),
)

#: probes of the multi-probe configurations
N_PROBES = 4

#: timing repetitions per mode (best-of, interleaved)
ROUNDS = 3


def _analyze(bench, state, step, n_probes, probe_batching):
    analyzer = CriticalityAnalyzer(method="ad", n_probes=n_probes,
                                   probe_batching=probe_batching)
    t0 = time.perf_counter()
    masks = analyzer.analyze(bench, state=state, step=step)
    return masks, time.perf_counter() - t0


def measure_probe_batching(name: str, problem_class: str) -> dict:
    """Wall-clock of 1-probe vs batched/per-probe 4-probe analyses."""
    bench = registry.create(name, problem_class)
    step = bench.total_steps // 2
    state = bench.checkpoint_state(step)

    _analyze(bench, state, step, 1, "batched")        # warm caches
    single = []
    batched = []
    loop = []
    for _ in range(ROUNDS):
        _, seconds = _analyze(bench, state, step, 1, "batched")
        single.append(seconds)
        batched_masks, seconds = _analyze(bench, state, step,
                                          N_PROBES, "batched")
        batched.append(seconds)
        loop_masks, seconds = _analyze(bench, state, step,
                                       N_PROBES, "per-probe")
        loop.append(seconds)

    single_seconds = min(single)
    batched_seconds = min(batched)
    loop_seconds = min(loop)
    masks_identical = all(
        np.array_equal(batched_masks[var].mask, loop_masks[var].mask)
        for var in batched_masks)

    return {
        "benchmark": name,
        "problem_class": problem_class,
        "n_probes": N_PROBES,
        "single_probe_seconds": round(single_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "per_probe_seconds": round(loop_seconds, 4),
        "batched_vs_single": round(batched_seconds / single_seconds, 2),
        "per_probe_vs_single": round(loop_seconds / single_seconds, 2),
        "batched_speedup": round(loop_seconds / batched_seconds, 2),
        "masks_identical": bool(masks_identical),
    }


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class,bound", MEASURED,
                         ids=[f"{n}-{c}" for n, c, _ in MEASURED])
def test_batched_probes_amortise_the_per_probe_loop(benchmark, name,
                                                    problem_class, bound):
    """Batched 4-probe analysis beats the loop; masks unchanged."""
    row = benchmark.pedantic(
        lambda: measure_probe_batching(name, problem_class),
        iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    assert row["masks_identical"], row
    # the batched sweep must pay for itself against the loop it replaces
    # (10% slack absorbs timer noise on the bandwidth-bound FT-S row)
    assert row["batched_seconds"] <= 1.1 * row["per_probe_seconds"], row
    # and stay within the regime's batched-vs-single bound: 2x where
    # recording overhead dominates, the 4x loop asymptote elsewhere
    if bound is not None:
        assert row["batched_vs_single"] <= bound, row


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure batched vs per-probe multi-probe analyses and "
                    "emit a JSON perf baseline")
    parser.add_argument("--json", default="BENCH_probes.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class, _bound in MEASURED:
        row = measure_probe_batching(name, problem_class)
        rows.append(row)
        print(f"{name}-{problem_class}: 1 probe "
              f"{row['single_probe_seconds']}s, {N_PROBES} probes batched "
              f"{row['batched_seconds']}s ({row['batched_vs_single']}x "
              f"single), per-probe {row['per_probe_seconds']}s "
              f"({row['per_probe_vs_single']}x single); batched speedup "
              f"{row['batched_speedup']}x, masks "
              f"{'identical' if row['masks_identical'] else 'DIFFER'}")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
