"""Figure 6 -- critical/uncritical distribution of array ``x`` in CG.

Regenerates the iterate-vector view: the first NA = 1400 elements critical,
the two declared-but-unused trailing slots uncritical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regions import Region, encode_mask
from repro.experiments import figures


@pytest.mark.paper
def test_figure6_cg_x_distribution(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure6", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    mask = report.data["figure"].mask
    assert encode_mask(mask) == [Region(0, 1400)]
    assert int(np.count_nonzero(~mask)) == 2
    benchmark.extra_info["uncritical"] = 2


@pytest.mark.paper
def test_figure6_pattern_is_step_independent(benchmark, runner_s):
    """The distribution does not depend on when the checkpoint is taken."""
    from repro.core.analysis import scrutinize

    bench = runner_s.benchmark("CG")

    def analyse_two_steps():
        early = scrutinize(bench, step=2)
        late = scrutinize(bench, step=bench.total_steps - 2)
        return early, late

    early, late = benchmark.pedantic(analyse_two_steps, iterations=1,
                                     rounds=1)
    np.testing.assert_array_equal(early.variables["x"].mask,
                                  late.variables["x"].mask)
