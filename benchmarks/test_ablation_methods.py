"""Ablation -- AD criticality vs. the cheaper alternatives.

Compares the AD analysis against the first-touch read-set (activity)
analysis and against multi-probe AD, and measures their relative cost.
These ablations back the design choices called out in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import scrutinize
from repro.experiments import ablation
from repro.npb import registry


@pytest.mark.paper
def test_ablation_ad_vs_read_set(benchmark):
    report = benchmark.pedantic(
        lambda: ablation.run_methods(benchmarks=("BT", "MG", "CG"),
                                     problem_class="S"),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper
    agreement = report.data["agreement"]
    # BT and CG coincide exactly; MG's residual shows the read-set
    # over-approximation the paper's AD approach avoids
    assert agreement[("BT", "u")]["only_a"] == 0
    assert agreement[("BT", "u")]["only_b"] == 0
    assert agreement[("MG", "r")]["only_b"] > 0


@pytest.mark.paper
def test_ablation_single_vs_multi_probe(benchmark):
    report = benchmark.pedantic(
        lambda: ablation.run_probes(benchmarks=("BT", "CG"), n_probes=3,
                                    problem_class="S"),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper


def test_activity_analysis_is_cheaper_than_ad(benchmark):
    """The read-set pass skips the reverse sweep, so it should not be more
    expensive than the AD analysis it approximates."""
    bench = registry.create("BT", "S")
    state = bench.checkpoint_state(bench.total_steps // 2)

    import time

    start = time.perf_counter()
    scrutinize(bench, state=state, method="ad")
    ad_seconds = time.perf_counter() - start

    result = benchmark(lambda: scrutinize(bench, state=state,
                                          method="activity"))
    assert result.method == "activity"
    benchmark.extra_info["ad_seconds"] = round(ad_seconds, 4)


def test_multi_probe_cost_scales_linearly(benchmark):
    """Three probes cost roughly three reverse sweeps; record the ratio."""
    bench = registry.create("CG", "S")
    state = bench.checkpoint_state(bench.total_steps // 2)

    import time

    start = time.perf_counter()
    single = scrutinize(bench, state=state, n_probes=1)
    single_seconds = time.perf_counter() - start

    multi = benchmark.pedantic(
        lambda: scrutinize(bench, state=state, n_probes=3),
        iterations=1, rounds=2)
    np.testing.assert_array_equal(single.variables["x"].mask,
                                  multi.variables["x"].mask)
    benchmark.extra_info["single_probe_seconds"] = round(single_seconds, 4)
