"""Figure 4 -- critical/uncritical distribution of array ``u`` in MG.

Regenerates the flat-array view of MG's solution: a contiguous critical
prefix of 39304 elements (the 34x34x34 finest level) followed by a 7176
element uncritical tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regions import encode_mask
from repro.experiments import figures


@pytest.mark.paper
def test_figure4_mg_u_distribution(benchmark, runner_s):
    report = benchmark.pedantic(lambda: figures.run("figure4", runner_s),
                                iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    mask = report.data["figure"].mask
    regions = encode_mask(mask)
    # one contiguous critical run covering exactly the finest level
    assert len(regions) == 1
    assert (regions[0].start, regions[0].stop) == (0, 34 ** 3)
    assert int(np.count_nonzero(~mask)) == 7176
    benchmark.extra_info["critical_prefix"] = 34 ** 3
