"""Snapshot schedules of the segmented sweep -- resident memory vs replay.

For each measured long-loop configuration the full remaining-loop segmented
analysis is run under all three snapshot schedules
(:mod:`repro.ad.schedule`): ``"all"`` keeps every boundary resident
(O(steps x state)), ``"binomial"`` keeps ~log2(steps) and recomputes the
rest forward (revolve-style), ``"spill"`` round-trips the boundaries
through the :mod:`repro.ckpt` writer/reader so exactly one snapshot is ever
resident.  The pytest entry asserts the memory envelopes (binomial
O(log steps), spill O(1 snapshot)) and the bitwise identity of the
gradients; the module is also runnable standalone to emit the
``BENCH_snapshots.json`` perf baseline consumed by
``scripts/ci_check.sh``::

    python benchmarks/test_snapshot_schedule.py --json BENCH_snapshots.json
"""

from __future__ import annotations

import json
import tempfile
import time

import numpy as np
import pytest

from repro.ad.schedule import SNAPSHOT_SCHEDULES, default_snapshot_budget
from repro.ad.segmented import SweepStats, segmented_gradients
from repro.npb import registry

#: long-main-loop configurations (analysed from step 0, i.e. every
#: iteration boundary is snapshotted); CG-A is the enlarged class the
#: segmented sweep unlocked -- 30 boundaries, the regime the binomial and
#: spill schedules are about
MEASURED = (("CG", "S"), ("EP", "T"), ("CG", "A"))


def measure_schedules(name: str, problem_class: str) -> dict:
    """Resident snapshot memory and wall-clock of every schedule."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)      # analyse the entire main loop
    steps = bench.total_steps
    watch = bench.default_watch_keys()

    row: dict = {"benchmark": name, "problem_class": problem_class,
                 "steps": steps, "schedules": {}}
    reference = None
    with tempfile.TemporaryDirectory(prefix="bench-spill-") as scratch:
        for policy in SNAPSHOT_SCHEDULES:
            stats = SweepStats()
            t0 = time.perf_counter()
            grads = segmented_gradients(bench, state, watch=watch,
                                        stats=stats,
                                        snapshot_schedule=policy,
                                        spill_dir=scratch)
            seconds = time.perf_counter() - t0
            if reference is None:
                reference = grads
            else:
                for key in watch:
                    a = np.asarray(reference[key], dtype=np.float64)
                    b = np.asarray(grads[key], dtype=np.float64)
                    assert np.array_equal(a.view(np.uint64),
                                          b.view(np.uint64)), \
                        f"{name}[{key}]: {policy} disagrees bitwise"
            row["schedules"][policy] = {
                "peak_snapshots": stats.peak_snapshots,
                "peak_snapshot_nbytes": stats.peak_snapshot_nbytes,
                "recomputed_steps": stats.recomputed_steps,
                "spilled_nbytes": stats.spilled_nbytes,
                "seconds": round(seconds, 4),
            }
    all_bytes = row["schedules"]["all"]["peak_snapshot_nbytes"]
    for policy in ("binomial", "spill"):
        peak = row["schedules"][policy]["peak_snapshot_nbytes"]
        row["schedules"][policy]["nbytes_reduction"] = \
            round(all_bytes / max(peak, 1), 2)
    return row


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", MEASURED,
                         ids=[f"{n}-{c}" for n, c in MEASURED])
def test_snapshot_memory_envelopes(benchmark, name, problem_class):
    """binomial stays O(log steps) resident, spill O(1); bits identical."""
    row = benchmark.pedantic(lambda: measure_schedules(name, problem_class),
                             iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    steps = row["steps"]
    schedules = row["schedules"]
    # "all" must hold every boundary
    assert schedules["all"]["peak_snapshots"] == steps + 1, row
    assert schedules["all"]["recomputed_steps"] == 0, row
    # binomial: resident snapshots bounded by the O(log steps) default
    # budget, paid for with bounded forward replay
    budget = default_snapshot_budget(steps)
    assert schedules["binomial"]["peak_snapshots"] <= budget, row
    assert schedules["binomial"]["recomputed_steps"] \
        <= steps * max(budget, 1), row
    # spill: O(1) resident -- one fetched snapshot plus at most the async
    # write queue's bounded copies -- the rest on (now deleted) disk
    from repro.ad.schedule import SpillSnapshots

    # bounded queue + the write in flight + the copy awaiting a queue slot
    spill_cap = 2 + SpillSnapshots._QUEUE_DEPTH
    assert 1 <= schedules["spill"]["peak_snapshots"] <= spill_cap, row
    assert schedules["spill"]["spilled_nbytes"] > 0, row
    assert schedules["spill"]["peak_snapshot_nbytes"] * (steps + 1) \
        <= schedules["all"]["peak_snapshot_nbytes"] * 2 * spill_cap, row


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure snapshot-schedule memory/replay trade-offs "
                    "and emit a JSON perf baseline")
    parser.add_argument("--json", default="BENCH_snapshots.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class in MEASURED:
        row = measure_schedules(name, problem_class)
        rows.append(row)
        rep = {policy: (f"{s['peak_snapshots']} resident / "
                        f"{s['peak_snapshot_nbytes']} B / "
                        f"+{s['recomputed_steps']} replayed / "
                        f"{s['seconds']}s")
               for policy, s in row["schedules"].items()}
        print(f"{name}-{problem_class} ({row['steps']} steps):")
        for policy, text in rep.items():
            print(f"  {policy:>8}: {text}")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"rows": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
