"""Table III -- checkpoint storage before/after eliminating uncritical
elements.

Times the pruned-checkpoint write path of the homemade library and
regenerates the storage comparison, asserting the saved percentages match
the paper (within its rounding).
"""

from __future__ import annotations

import pytest

from repro.ckpt.writer import write_full_checkpoint, write_pruned_checkpoint
from repro.experiments import paper, table3


@pytest.mark.paper
def test_pruned_checkpoint_write_cost_mg(benchmark, runner_s, tmp_path):
    """Cost of writing one pruned checkpoint (MG, the largest saving)."""
    result = runner_s.result("MG")
    bench = runner_s.benchmark("MG")

    def write(counter=[0]):
        counter[0] += 1
        return write_pruned_checkpoint(
            tmp_path / f"mg_{counter[0]}.ckpt", bench, result.state,
            result.variables, step=result.step)

    written = benchmark(write)
    assert written.nbytes < result.full_nbytes


@pytest.mark.paper
def test_full_checkpoint_write_cost_mg(benchmark, runner_s, tmp_path):
    """Baseline: cost of writing the conventional full checkpoint."""
    result = runner_s.result("MG")
    bench = runner_s.benchmark("MG")

    def write(counter=[0]):
        counter[0] += 1
        return write_full_checkpoint(tmp_path / f"mgf_{counter[0]}.ckpt",
                                     bench, result.state, step=result.step)

    written = benchmark(write)
    assert written.nbytes >= result.full_nbytes


@pytest.mark.paper
def test_table3_storage_saved(benchmark, runner_s, tmp_path):
    report = benchmark.pedantic(
        lambda: table3.run(runner_s, directory=tmp_path),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text
    rows = {r["benchmark"]: r for r in report.data["rows"]}
    for name, expectation in paper.TABLE3_EXPECTED.items():
        assert rows[name]["saved_fraction"] == pytest.approx(
            expectation.saved_fraction, abs=0.002)
    benchmark.extra_info["saved_percent"] = {
        name: round(100 * rows[name]["saved_fraction"], 1) for name in rows}


@pytest.mark.paper
def test_storage_saved_up_to_20_percent(runner_s, benchmark):
    """The headline claim: storage saved by up to ~20%, 13% on average."""
    report = benchmark.pedantic(
        lambda: table3.run(runner_s, measure_on_disk=False),
        iterations=1, rounds=1)
    fractions = [r["saved_fraction"] for r in report.data["rows"]]
    assert max(fractions) >= 0.19
    assert 0.08 <= sum(fractions) / len(fractions) <= 0.16
