"""Activity analysis: monolithic vs segmented vs plan-replayed.

For each measured port the derivative-free activity (first-touch read-set)
analysis is timed three ways: the monolithic tape walk (trace the whole
remaining loop, walk it once), the chained segmented sweep with the tracer
re-run per segment (``trace_cache="off"``), and the plan-replayed segmented
sweep with a warm :class:`~repro.ad.plan.PlanCache` (transfer masks derived
once from the compiled plans, every later analysis replays without
tracing).  Masks are asserted bitwise-identical across all three, wall-clock
and peak tape nodes/bytes are recorded, and the replay hit counts are read
back out of :class:`~repro.ad.segmented.SweepStats`.

The pytest entry pins the PR's acceptance criterion -- the warm
plan-replayed analysis beats the monolithic walk on the recording-bound
class-T ports while holding the peak tape to one iteration -- and the
module is runnable standalone to emit the ``BENCH_activity.json`` perf
baseline consumed by ``scripts/ci_check.sh``::

    python benchmarks/test_activity_replay.py --json BENCH_activity.json
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.ad import activity as act
from repro.ad.plan import PlanCache
from repro.ad.segmented import SweepStats
from repro.npb import registry

#: ports timed monolithic vs segmented vs plan-replayed; class T is the
#: recording-bound regime the plan-derived transfer is about, the class-A
#: rows show the enlarged scenario the chained sweep unlocks
MEASURED = (("BT", "T"), ("SP", "T"), ("MG", "T"), ("CG", "T"),
            ("LU", "T"), ("FT", "T"), ("EP", "T"),
            ("CG", "A"), ("MG", "A"))

#: the recording-bound class-T ports the acceptance criterion pins: warm
#: plan replays must beat re-tracing the monolithic tape outright
PINNED_BEATS_MONO = {("CG", "T"), ("FT", "T"), ("LU", "T")}


def _monolithic_once(bench, state, watch):
    """One monolithic analysis: trace the remaining loop, walk the tape."""
    tape, leaves, _out = bench.traced_restart(state, watch=list(watch))
    results = act.read_masks(tape, [leaves[key] for key in watch])
    return dict(zip(watch, results)), tape


def _interleaved_seconds(thunks, repeats) -> list[float]:
    """Best-of-N wall-clock for every mode, alternated back to back.

    Interleaving keeps transient machine load from landing on one mode
    only, and min-of-N discards the loaded repetitions entirely.
    """
    best = [None] * len(thunks)
    for _ in range(repeats):
        for i, thunk in enumerate(thunks):
            t0 = time.perf_counter()
            thunk()
            dt = time.perf_counter() - t0
            best[i] = dt if best[i] is None else min(best[i], dt)
    return best


def measure_activity(name: str, problem_class: str,
                     repeats: int = 5) -> dict:
    """Monolithic vs segmented vs plan-replayed activity telemetry."""
    bench = registry.create(name, problem_class)
    state = bench.checkpoint_state(0)
    watch = list(bench.default_watch_keys())
    if problem_class == "A":
        repeats = min(repeats, 3)

    # reference masks + the monolithic tape's peak footprint
    mono, tape = _monolithic_once(bench, state, watch)
    mono_stats = SweepStats()
    mono_stats.observe(tape)
    del tape

    # warm the plan cache (capture, compile), then check bitwise identity
    # of all three modes in their measured steady state
    cache = PlanCache()
    for _ in range(2):
        planned = act.segmented_read_masks(bench, state, watch=watch,
                                           trace_cache="plan",
                                           plan_cache=cache)
    seg = act.segmented_read_masks(bench, state, watch=watch,
                                   trace_cache="off")
    for key in watch:
        for field in ("read", "moved"):
            a = getattr(mono[key], field)
            b = getattr(seg[key], field)
            c = getattr(planned[key], field)
            assert np.array_equal(a, b), \
                f"{name}[{key}].{field}: segmented masks differ"
            assert np.array_equal(a, c), \
                f"{name}[{key}].{field}: plan-replayed masks differ"

    t_mono, t_seg, t_plan = _interleaved_seconds([
        lambda: _monolithic_once(bench, state, watch),
        lambda: act.segmented_read_masks(bench, state, watch=watch,
                                         trace_cache="off"),
        lambda: act.segmented_read_masks(bench, state, watch=watch,
                                         plan_cache=cache),
    ], repeats)

    seg_stats = SweepStats()
    act.segmented_read_masks(bench, state, watch=watch, trace_cache="off",
                             stats=seg_stats)
    plan_stats = SweepStats()
    act.segmented_read_masks(bench, state, watch=watch,
                             plan_cache=cache, stats=plan_stats)
    return {
        "benchmark": name,
        "problem_class": problem_class,
        "steps": bench.total_steps,
        "monolithic_seconds": round(t_mono, 5),
        "segmented_seconds": round(t_seg, 5),
        "plan_replayed_seconds": round(t_plan, 5),
        "speedup_vs_monolithic": round(t_mono / t_plan, 3),
        "monolithic_peak_nodes": mono_stats.peak_nodes,
        "monolithic_peak_nbytes": mono_stats.peak_nbytes,
        "segmented_peak_nodes": seg_stats.peak_nodes,
        "segmented_peak_nbytes": seg_stats.peak_nbytes,
        "plan_replayed_peak_nodes": plan_stats.peak_nodes,
        "stats": {
            "activity_segments": plan_stats.activity_segments,
            "activity_plan_replays": plan_stats.activity_plan_replays,
            "activity_retraces": plan_stats.activity_retraces,
            "activity_peak_mask_nbytes":
                plan_stats.activity_peak_mask_nbytes,
            "plan_rejects": plan_stats.plan_rejects,
        },
    }


@pytest.mark.paper
@pytest.mark.parametrize("name,problem_class", MEASURED,
                         ids=[f"{n}-{c}" for n, c in MEASURED])
def test_activity_replay(benchmark, name, problem_class):
    """plan-replayed bitwise-identical, O(1-iteration) tape and (where
    pinned) faster than re-tracing the monolithic tape."""
    row = benchmark.pedantic(lambda: measure_activity(name, problem_class),
                             iterations=1, rounds=1)
    benchmark.extra_info.update(row)

    stats = row["stats"]
    # a warm cache serves every segment from the plan transfer
    assert stats["activity_retraces"] == 0, row
    assert stats["activity_plan_replays"] == stats["activity_segments"], row
    assert stats["plan_rejects"] == 0, row
    assert stats["activity_peak_mask_nbytes"] > 0, row

    # the segmented peak stays at one iteration's tape; the monolithic
    # tape grows with the step count (>= 2 steps of margin)
    if row["steps"] > 2:
        assert row["segmented_peak_nodes"] * 2 \
            <= row["monolithic_peak_nodes"], row

    if (name, problem_class) in PINNED_BEATS_MONO:
        assert row["speedup_vs_monolithic"] > 1.0, \
            (f"{name}-{problem_class}: plan-replayed activity only "
             f"{row['speedup_vs_monolithic']:.2f}x over monolithic "
             f"(must beat 1.0x)")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure monolithic vs segmented vs plan-replayed "
                    "activity analyses; emit a JSON baseline")
    parser.add_argument("--json", default="BENCH_activity.json",
                        help="output path of the JSON baseline")
    args = parser.parse_args(argv)

    rows = []
    for name, problem_class in MEASURED:
        row = measure_activity(name, problem_class)
        rows.append(row)
        print(f"{name}-{problem_class} ({row['steps']} steps): "
              f"mono={row['monolithic_seconds']}s "
              f"seg={row['segmented_seconds']}s "
              f"plan={row['plan_replayed_seconds']}s "
              f"-> {row['speedup_vs_monolithic']}x  "
              f"(peak nodes {row['monolithic_peak_nodes']} -> "
              f"{row['segmented_peak_nodes']}, "
              f"replays={row['stats']['activity_plan_replays']}/"
              f"{row['stats']['activity_segments']})")

    with open(args.json, "w", encoding="ascii") as fh:
        json.dump({"activity": rows}, fh, indent=1)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
