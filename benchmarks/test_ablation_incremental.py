"""Extension -- criticality pruning vs. element-level incremental deltas.

Regenerates the comparison between the paper's reduction (drop uncritical
elements) and the orthogonal incremental reduction (drop unchanged
elements), plus their combination, at the paper's class-S scale, and checks
the qualitative shape: FT's delta collapses to its accumulators, BT/SP/LU
deltas cover only the rewritten interior, and combining the two reductions
never stores more than either alone.
"""

from __future__ import annotations

import pytest

from repro.experiments import incremental


@pytest.mark.paper
def test_extension_incremental_vs_pruning(benchmark, runner_s, tmp_path):
    report = benchmark.pedantic(
        lambda: incremental.run(runner_s, directory=tmp_path),
        iterations=1, rounds=1)
    print("\n" + report.text)
    assert report.matches_paper, report.text

    data = report.data
    for name, entry in data.items():
        assert entry["verified"], f"{name} chain restart failed"
        # combining with criticality never stores more than the plain delta
        assert entry["combined_nbytes"] <= entry["incremental_nbytes"] + 64
    # where an iteration rewrites only part of the state, the combined
    # reduction also undercuts pruning alone
    for name in ("BT", "SP", "MG", "LU", "FT"):
        assert data[name]["combined_nbytes"] < data[name]["pruned_nbytes"]
    # FT rewrites nothing but its checksum accumulators between iterations
    assert data["FT"]["incremental_nbytes"] < 0.01 * data["FT"]["full_nbytes"]
    # CG rewrites its whole (small) iterate, so the delta cannot beat pruning
    assert data["CG"]["incremental_nbytes"] >= data["CG"]["pruned_nbytes"]
    benchmark.extra_info["combined_bytes"] = {
        name: entry["combined_nbytes"] for name, entry in data.items()}
