#!/usr/bin/env bash
# Lightweight CI gate: tier-1 test suite + the quickstart example.
#
# Usage:  scripts/ci_check.sh [extra pytest args...]
#
# Mirrors what the repo's ROADMAP calls the tier-1 verify, then smoke-runs
# the quickstart (which exercises analysis, pruned checkpointing and
# restart end-to-end, including the --workers/cache workflow).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q tests/ "$@"

echo "== quickstart example =="
python examples/quickstart.py

echo "== CLI smoke: warm-cache analyze =="
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
python -m repro.cli --class T --cache-dir "$cache_dir" analyze CG >/dev/null
python -m repro.cli --class T --cache-dir "$cache_dir" analyze CG

echo "== segmented sweep: bitwise equivalence =="
python -m pytest -q tests/ad/test_segmented.py \
    tests/experiments/test_sweep_plumbing.py tests/npb/test_class_a.py

echo "== snapshot schedules: bitwise equivalence =="
python -m pytest -q tests/ad/test_schedule.py \
    tests/ad/test_schedule_faults.py \
    tests/experiments/test_schedule_plumbing.py

echo "== fault tolerance: retries, quarantine, chaos, resumable batches =="
python -m pytest -q tests/experiments/test_faults.py \
    tests/experiments/test_chaos.py tests/core/test_store.py

echo "== batched probe sweep: per-probe equivalence =="
python -m pytest -q tests/ad/test_probes.py \
    tests/experiments/test_probe_plumbing.py

echo "== replay plans: plan-vs-tracer bitwise equivalence =="
python -m pytest -q tests/ad/test_plan.py

echo "== plan lowering: IR passes, fused-vs-unfused bitwise equivalence =="
python -m pytest -q tests/ad/test_passes.py tests/ad/test_primitive_coverage.py

echo "== tangent sweep: mask equivalence across all ports =="
python -m pytest -q tests/ad/test_tangent.py

echo "== segmented activity: monolithic-vs-chained bitwise equivalence =="
python -m pytest -q tests/ad/test_activity_sweep.py \
    tests/experiments/test_activity_plumbing.py

echo "== CLI smoke: segmented sweep, enlarged class A =="
python -m repro.cli --class A --sweep segmented analyze CG >/dev/null

echo "== CLI smoke: binomial snapshot schedule, class A =="
python -m repro.cli --class A --sweep segmented \
    --snapshot-schedule binomial analyze CG >/dev/null

echo "== CLI smoke: batched multi-probe analysis =="
python -m repro.cli --class T --probes 4 analyze CG >/dev/null

echo "== CLI smoke: forward-mode tangent sweep =="
python -m repro.cli --class T --method tangent analyze EP >/dev/null

echo "== perf baseline: BENCH_segmented.json =="
python benchmarks/test_segmented_memory.py --json BENCH_segmented.json

echo "== perf baseline: BENCH_probes.json =="
python benchmarks/test_probe_batching.py --json BENCH_probes.json

echo "== perf baseline: BENCH_snapshots.json =="
python benchmarks/test_snapshot_schedule.py --json BENCH_snapshots.json

echo "== perf baseline: BENCH_plan.json =="
python benchmarks/test_trace_plan.py --json BENCH_plan.json

echo "== perf baseline: BENCH_tangent.json =="
python benchmarks/test_tangent_sweep.py --json BENCH_tangent.json

echo "== perf baseline: BENCH_activity.json =="
python benchmarks/test_activity_replay.py --json BENCH_activity.json

echo "== perf baseline: BENCH_lowering.json =="
python benchmarks/test_plan_lowering.py --json BENCH_lowering.json

echo "== CLI smoke: segmented sweep with the replay plan disabled =="
python -m repro.cli --class T --sweep segmented --trace-cache off \
    analyze CG >/dev/null

echo "== CLI smoke: plan-replayed segmented activity analysis =="
python -m repro.cli --class T --method activity --sweep segmented \
    --trace-cache plan analyze CG >/dev/null

echo "== CLI smoke: plan passes disabled (unfused interpreter) =="
python -m repro.cli --class T --sweep segmented --plan-optimize off \
    analyze CG >/dev/null

echo "== CLI smoke: explicit interp executor =="
python -m repro.cli --class T --sweep segmented --executor interp \
    analyze CG >/dev/null

echo "== CLI smoke: chaos harness (worker kills + cache corruption) =="
# a chaos-injected batch must complete, quarantine nothing (the CLI exits
# non-zero otherwise) and print the same report as a fault-free run
chaos_cache="$(mktemp -d)"
plain_out="$(mktemp)"; chaos_out="$(mktemp)"; warm_out="$(mktemp)"
trap 'rm -rf "$cache_dir" "$chaos_cache" "$plain_out" "$chaos_out" "$warm_out"' EXIT
python -m repro.cli --class T verify --benchmarks CG EP IS > "$plain_out"
python -m repro.cli --class T --workers 2 --cache-dir "$chaos_cache" \
    --chaos worker-kill,corrupt-cache verify --benchmarks CG EP IS \
    > "$chaos_out"
grep -Eq "[1-9][0-9]* worker death" "$chaos_out"
grep -q "chaos-corrupted file" "$chaos_out"
diff <(grep -v '^$' "$plain_out") \
     <(sed '/^fault-tolerance:/,$d' "$chaos_out" | grep -v '^$')
# the warm re-run hits the chaos-corrupted cache entries: they must be
# quarantined and recomputed, with the report again unchanged
python -m repro.cli --class T --cache-dir "$chaos_cache" \
    verify --benchmarks CG EP IS > "$warm_out" 2>/dev/null
grep -q "corrupt entr" "$warm_out"
diff <(grep -v '^$' "$plain_out") \
     <(sed '/^fault-tolerance:/,$d' "$warm_out" | grep -v '^$')

echo "ci_check: OK"
