#!/usr/bin/env bash
# Lightweight CI gate: tier-1 test suite + the quickstart example.
#
# Usage:  scripts/ci_check.sh [extra pytest args...]
#
# Mirrors what the repo's ROADMAP calls the tier-1 verify, then smoke-runs
# the quickstart (which exercises analysis, pruned checkpointing and
# restart end-to-end, including the --workers/cache workflow).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q tests/ "$@"

echo "== quickstart example =="
python examples/quickstart.py

echo "== CLI smoke: warm-cache analyze =="
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
python -m repro.cli --class T --cache-dir "$cache_dir" analyze CG >/dev/null
python -m repro.cli --class T --cache-dir "$cache_dir" analyze CG

echo "ci_check: OK"
